// Replication fault fuzzer — the lockdown for the net layer (PR 7).
//
// One process, loopback TCP: a leader (IncrementalRelabeler + DeltaJournal
// + net::Server) is driven through randomized edit streams while a follower
// (ForestIndex + net::Replicator) tails the journal over the wire and the
// net.* failpoints inject faults at every socket boundary — dropped
// connections, short reads, short and torn writes, flipped frame bytes,
// refused accepts — and the follower itself is killed and restarted
// mid-stream. Query traffic (including deliberately malformed frames) rides
// the same server the whole time. The journal checkpoints aggressively, so
// followers routinely fall off the tail and recover through the full
// kSnapshot path, not just kDelta streaming.
//
// Properties asserted:
//   * convergence — after each round's faults are disarmed, the follower's
//     epoch chain reaches the leader's; at the end its arena is
//     BIT-IDENTICAL to the leader's (serialized container comparison),
//   * survival — no injected fault or garbage-spewing client ever takes
//     the server down: a clean query batch must still succeed afterwards,
//   * clean end — announce_end() delivers kEnd to a caught-up subscriber
//     and a stop_on_end follower exits with ended_cleanly().
//
// Reproducibility: the edit/fault schedule is a pure function of --seed;
// failures print the seed and write the edit log as an artifact. (Exact
// fault *placement* depends on thread interleaving — the properties above
// hold for every interleaving, which is the point.)
//
// Flags (also readable from the environment, for ctest/CI-driven runs):
//   --seed N   / TREELAB_NET_FUZZ_SEED    override the run seed
//   --edits N  / TREELAB_NET_FUZZ_EDITS   edits per round (default 200)
//   --rounds N / TREELAB_NET_FUZZ_ROUNDS  fault rounds (default 6 — with
//                                         one fault armed per edit, the
//                                         default budget is 1200 faults)
//   --artifact-dir D / TREELAB_NET_FUZZ_ARTIFACT_DIR
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/delta_journal.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/label_store.hpp"
#include "net/client.hpp"
#include "net/net_io.hpp"
#include "net/replicator.hpp"
#include "net/server.hpp"
#include "serve/forest_index.hpp"
#include "tree/generators.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"

namespace {

using namespace treelab;
using core::DeltaJournal;
using core::IncrementalRelabeler;
using core::LabelStore;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;
using util::FailMode;

struct FuzzConfig {
  std::uint64_t seed = 0;  // 0 = per-test default
  int edits = 0;           // 0 = default (200 per round)
  int rounds = 0;          // 0 = default (6)
  std::string artifact_dir;
};
FuzzConfig g_cfg;

int edits_per_round() { return g_cfg.edits > 0 ? g_cfg.edits : 200; }
int fuzz_rounds() { return g_cfg.rounds > 0 ? g_cfg.rounds : 6; }

std::string artifact_dir() {
  return g_cfg.artifact_dir.empty() ? testing::TempDir()
                                    : g_cfg.artifact_dir + "/";
}

/// One full leader/follower fuzz run. Owns every moving part; the public
/// entry is run(), which drives the rounds and the final convergence +
/// survival checks.
class NetFuzz {
 public:
  explicit NetFuzz(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  ~NetFuzz() {
    // Teardown order matters: the replicator holds a connection into the
    // server, the server tails the journal.
    if (repl_) repl_->stop();
    if (server_) server_->stop();
    repl_.reset();
    server_.reset();
    journal_.reset();
    util::failpoint::disarm_all();
    cleanup_files();
  }

  void run() {
    build_leader();
    build_follower();
    const int rounds = fuzz_rounds();
    for (int r = 0; r < rounds && !failed_; ++r) {
      fault_round(r);
      if (failed_) break;
      await_convergence("round " + std::to_string(r));
    }
    if (failed_) return;
    final_checks();
  }

  [[nodiscard]] std::uint64_t faults_armed() const { return faults_armed_; }

 private:
  using Clock = std::chrono::steady_clock;

  // -- setup ---------------------------------------------------------------

  void build_leader() {
    base_path_ = artifact_dir() + "treelab_net_fuzz_" + std::to_string(seed_) +
                 ".lbl";
    cleanup_files();
    const NodeId n = static_cast<NodeId>(3 + rng_() % 40);
    const Tree base = tree::random_tree(n, seed_ ^ 0x9e3779b97f4a7c15ULL);
    relab_ = std::make_unique<IncrementalRelabeler>(base);
    mirror_init(base);
    log_.push_back("base random " + std::to_string(n));

    core::JournalOptions jopt;
    jopt.sync = false;
    // Fold the journal after a handful of records: subscribers keep losing
    // the tail mid-stream, so the kSnapshot catch-up path runs constantly.
    jopt.checkpoint_records = 3 + rng_() % 6;
    journal_.emplace(DeltaJournal::create(base_path_, relab_->to_loaded(),
                                          jopt));

    leader_index_ = std::make_unique<serve::ForestIndex>();
    leader_tree_ = leader_index_->add(relab_->to_loaded());

    net::ServerOptions sopt;
    sopt.port = 0;
    sopt.idle_timeout_ms = 60'000;   // the reaper must not race the fuzz
    sopt.write_stall_timeout_ms = 2'000;
    sopt.drain_timeout_ms = 1'000;
    server_ = std::make_unique<net::Server>(*leader_index_, sopt);
    server_->attach_journal(&*journal_, leader_tree_);
    server_->start();
  }

  void build_follower() {
    follower_index_ = std::make_unique<serve::ForestIndex>();
    // Any placeholder labeling works: its chain matches nothing the leader
    // ever had, so the first subscribe comes back as a full snapshot.
    follower_tree_ = follower_index_->add(
        {IncrementalRelabeler::scheme_tag(), journal_->params(), {}});
    start_follower(/*stop_on_end=*/false);
  }

  void start_follower(bool stop_on_end) {
    if (repl_) repl_->stop();
    net::ReplicatorOptions ropt;
    ropt.port = server_->port();
    ropt.tree = follower_tree_;
    ropt.connect_timeout_ms = 1'000;
    ropt.read_timeout_ms = 2'000;
    ropt.backoff_min_ms = 1;
    ropt.backoff_max_ms = 50;
    ropt.backoff_seed = rng_();
    ropt.stop_on_end = stop_on_end;
    repl_ = std::make_unique<net::Replicator>(*follower_index_, ropt);
    repl_->start();
  }

  // -- the fuzz loop -------------------------------------------------------

  void fault_round(int round) {
    const int budget = edits_per_round();
    for (int e = 0; e < budget && !failed_; ++e) {
      random_edit();
      ++pending_;
      if (pending_ > 0 && rng_() % 4 == 0) ship();
      arm_random_fault();
      if (rng_() % 8 == 0) fire_query();
      if (rng_() % 64 == 0) {
        // Kill-point: the follower dies mid-stream (possibly mid-snapshot)
        // and a fresh one resubscribes from whatever epoch it reached.
        log_.push_back("restart-follower");
        start_follower(/*stop_on_end=*/false);
        ++follower_restarts_;
      }
    }
    if (pending_ > 0) ship();
    (void)round;
    util::failpoint::disarm_all();
  }

  void ship() {
    const core::LabelDelta d = relab_->make_delta();
    if (d.base_chain != journal_->chain()) {
      fail("relabeler and journal chain diverged before ship");
      return;
    }
    server_->replicate(d);  // journal append + wake the streaming loop
    relab_->advance_delta(d);
    leader_index_->apply_delta(leader_tree_, d);
    pending_ = 0;
    ++deltas_shipped_;
  }

  void arm_random_fault() {
    ++faults_armed_;
    const std::uint64_t skip = rng_() % 6;
    switch (rng_() % 9) {
      case 0:
      case 1:
        util::failpoint::arm("net.read", FailMode::kError, skip, 1);
        break;
      case 2:
        util::failpoint::arm("net.read", FailMode::kShortRead, skip, 1,
                             1 + rng_() % 7);
        break;
      case 3:
        util::failpoint::arm("net.write", FailMode::kError, skip, 1);
        break;
      case 4:
        util::failpoint::arm("net.write", FailMode::kShortWrite, skip, 1,
                             rng_() % 64);
        break;
      case 5:
        util::failpoint::arm("net.write", FailMode::kTornWrite, skip, 1,
                             rng_() % 64);
        break;
      case 6:
      case 7:
        util::failpoint::arm("net.frame.corrupt", FailMode::kCorrupt, skip, 1,
                             rng_());
        break;
      default:
        util::failpoint::arm("net.accept", FailMode::kError, 0, 1);
        break;
    }
  }

  void fire_query() {
    if (!client_ || !client_->connected())
      client_ = std::make_unique<net::QueryClient>("127.0.0.1",
                                                   server_->port(), 500);
    if (!client_->connected()) {
      client_.reset();  // accept fault ate the connect; try again later
      return;
    }
    std::vector<serve::Request> reqs(1 + rng_() % 8);
    const auto ids = static_cast<std::uint32_t>(relab_->size() + 4);
    for (serve::Request& r : reqs) {
      r.tree = rng_() % 16 == 0 ? 999 : leader_tree_;  // some kBadTree
      r.u = static_cast<NodeId>(rng_() % ids);         // some kBadNode
      r.v = static_cast<NodeId>(rng_() % ids);
    }
    std::vector<serve::QueryResult> out;
    const auto st = client_->query_batch(reqs, out, 1'000);
    // Under armed faults any status is legitimate; what is NOT legitimate
    // is a wrong-shaped success.
    if (st == net::QueryClient::BatchStatus::kOk && out.size() != reqs.size())
      fail("query reply size mismatch");
    if (st == net::QueryClient::BatchStatus::kError) client_.reset();
  }

  // -- convergence + survival ----------------------------------------------

  void await_convergence(const std::string& where) {
    const Clock::time_point deadline = Clock::now() + std::chrono::seconds(60);
    while (follower_index_->chain(follower_tree_) != journal_->chain()) {
      if (Clock::now() >= deadline) {
        fail("convergence timeout at " + where +
             " (follower chain stuck behind leader)");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void final_checks() {
    // A garbage-spewing peer, deterministically (all faults disarmed): the
    // server must answer with a framing error and keep serving.
    const std::uint64_t bad_before = server_->stats().bad_frames;
    spew_garbage();
    const Clock::time_point deadline = Clock::now() + std::chrono::seconds(30);
    while (server_->stats().bad_frames == bad_before) {
      if (Clock::now() >= deadline) {
        fail("server never flagged the garbage frame");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Survival: a clean batch still round-trips after every injected fault.
    net::QueryClient probe("127.0.0.1", server_->port());
    ASSERT_TRUE(probe.connected()) << "server unreachable after fuzzing";
    const std::vector<serve::Request> reqs{{leader_tree_, 0, 0}};
    std::vector<serve::QueryResult> out;
    EXPECT_EQ(probe.query_batch(reqs, out),
              net::QueryClient::BatchStatus::kOk)
        << "server cannot serve a clean batch after fuzzing (seed " << seed_
        << ")";

    // Clean end: a stop_on_end follower catches up, gets kEnd, and exits.
    server_->announce_end();
    start_follower(/*stop_on_end=*/true);
    const Clock::time_point end_deadline =
        Clock::now() + std::chrono::seconds(60);
    while (repl_->stats().ends_seen == 0) {
      if (Clock::now() >= end_deadline) {
        fail("follower never saw kEnd after announce_end");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    repl_->stop();
    EXPECT_TRUE(repl_->ended_cleanly());

    // The headline property: the follower's arena is bit-identical to the
    // leader's committed labeling, serialized container vs container.
    EXPECT_EQ(follower_index_->chain(follower_tree_), journal_->chain());
    std::ostringstream leader_bytes, follower_bytes;
    LabelStore::save_mappable(leader_bytes, journal_->scheme(),
                              journal_->labels(), journal_->params());
    const LabelStore::LoadedArena snap =
        follower_index_->snapshot_labels(follower_tree_);
    LabelStore::save_mappable(follower_bytes, snap.scheme, snap.labels,
                              snap.params);
    if (leader_bytes.str() != follower_bytes.str())
      fail("follower arena is not bit-identical to the leader's");

    const net::Server::Stats st = server_->stats();
    const net::Replicator::Stats rs = repl_->stats();
    EXPECT_GT(st.accepted, 0u);
    EXPECT_GT(st.frames_in, 0u);
    EXPECT_GT(st.deltas_sent + st.snapshots_sent, 0u);
    EXPECT_GT(st.ends_sent, 0u);
    std::cout << "[net_fault_fuzz] seed=" << seed_ << " faults_armed="
              << faults_armed_ << " deltas_shipped=" << deltas_shipped_
              << " follower_restarts=" << follower_restarts_
              << " | server: accepted=" << st.accepted << " bad_frames="
              << st.bad_frames << " overloaded=" << st.overloaded
              << " snapshots_sent=" << st.snapshots_sent << " deltas_sent="
              << st.deltas_sent << " | follower: connects=" << rs.connects
              << " frame_errors=" << rs.frame_errors << " chain_rejects="
              << rs.chain_rejects << " | trips: read="
              << util::failpoint::trips("net.read") << " write="
              << util::failpoint::trips("net.write") << " corrupt="
              << util::failpoint::trips("net.frame.corrupt") << " accept="
              << util::failpoint::trips("net.accept") << "\n";
  }

  void spew_garbage() {
    const int fd = net::connect_with_timeout("127.0.0.1", server_->port(),
                                             1'000);
    ASSERT_GE(fd, 0) << "garbage client could not connect";
    const char junk[] = "NOTAFRAME-NOTAFRAME-NOTAFRAME-NOTAFRAME";
    std::size_t sent = 0;
    while (sent < sizeof(junk)) {
      const net::IoResult w =
          net::write_some(fd, junk + sent, sizeof(junk) - sent);
      if (w.status != net::IoStatus::kOk) break;
      sent += w.n;
    }
    ::close(fd);
  }

  // -- randomized edits (structural mirror, as in edit_fuzz_test) ----------

  void mirror_init(const Tree& base) {
    parent_.resize(static_cast<std::size_t>(base.size()));
    dead_.assign(static_cast<std::size_t>(base.size()), 0);
    kids_.assign(static_cast<std::size_t>(base.size()), 0);
    for (NodeId v = 0; v < base.size(); ++v) {
      parent_[static_cast<std::size_t>(v)] = base.parent(v);
      if (base.parent(v) != kNoNode)
        ++kids_[static_cast<std::size_t>(base.parent(v))];
    }
  }

  void random_edit() {
    const std::uint64_t pick = rng_() % 100;
    if (pick < 55) {  // grow: keeps every other op well-fed with leaves
      const NodeId p = pick_live();
      const auto w = static_cast<std::uint32_t>(1 + rng_() % 8);
      log_.push_back("I " + std::to_string(p) + " " + std::to_string(w));
      (void)relab_->insert_leaf(p, w);
      parent_.push_back(p);
      dead_.push_back(0);
      kids_.push_back(0);
      ++kids_[static_cast<std::size_t>(p)];
    } else if (pick < 70) {
      const NodeId v = pick_live_leaf();
      if (v == kNoNode) return random_edit_fallback();
      log_.push_back("D " + std::to_string(v));
      relab_->delete_leaf(v);
      dead_[static_cast<std::size_t>(v)] = 1;
      --kids_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
    } else if (pick < 85) {
      const NodeId v = pick_live_nonroot();
      if (v == kNoNode) return random_edit_fallback();
      const auto w = static_cast<std::uint32_t>(1 + rng_() % 8);
      log_.push_back("W " + std::to_string(v) + " " + std::to_string(w));
      relab_->set_edge_weight(v, w);
    } else if (pick < 95) {
      // Move one leaf: detach + immediate re-attach elsewhere. Exercises
      // the detach/attach delta paths without a long-lived detached state.
      const NodeId v = pick_live_leaf();
      if (v == kNoNode) return random_edit_fallback();
      --kids_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
      dead_[static_cast<std::size_t>(v)] = 1;  // not a parent candidate now
      relab_->detach_subtree(v);
      const NodeId p = pick_live();
      const auto w = static_cast<std::uint32_t>(1 + rng_() % 8);
      log_.push_back("M " + std::to_string(v) + " " + std::to_string(p) +
                     " " + std::to_string(w));
      relab_->attach_subtree(p, w);
      dead_[static_cast<std::size_t>(v)] = 0;
      parent_[static_cast<std::size_t>(v)] = p;
      ++kids_[static_cast<std::size_t>(p)];
    } else {
      log_.push_back("C");
      const std::vector<NodeId> map = relab_->compact();
      std::vector<NodeId> parent;
      std::vector<int> kids;
      for (std::size_t i = 0; i < map.size(); ++i) {
        if (map[i] == kNoNode) continue;
        const NodeId p = parent_[i];
        parent.push_back(p == kNoNode ? kNoNode
                                      : map[static_cast<std::size_t>(p)]);
        kids.push_back(kids_[i]);
      }
      parent_ = std::move(parent);
      kids_ = std::move(kids);
      dead_.assign(parent_.size(), 0);
    }
  }

  void random_edit_fallback() {  // nothing eligible: grow instead
    const NodeId p = pick_live();
    log_.push_back("I " + std::to_string(p) + " 1");
    (void)relab_->insert_leaf(p, 1);
    parent_.push_back(p);
    dead_.push_back(0);
    kids_.push_back(0);
    ++kids_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] NodeId pick_live() {
    for (;;) {  // the root is always live, so this terminates
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (dead_[i] == 0) return static_cast<NodeId>(i);
    }
  }
  [[nodiscard]] NodeId pick_live_leaf() {
    for (int tries = 0; tries < 64; ++tries) {
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (dead_[i] == 0 && kids_[i] == 0 && parent_[i] != kNoNode)
        return static_cast<NodeId>(i);
    }
    return kNoNode;
  }
  [[nodiscard]] NodeId pick_live_nonroot() {
    for (int tries = 0; tries < 64; ++tries) {
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (dead_[i] == 0 && parent_[i] != kNoNode)
        return static_cast<NodeId>(i);
    }
    return kNoNode;
  }

  // -- failure reporting ---------------------------------------------------

  void fail(const std::string& what) {
    failed_ = true;
    const std::string path =
        artifact_dir() + "net_fuzz_" + std::to_string(seed_) + ".edits";
    std::ofstream out(path);
    for (const std::string& l : log_) out << l << "\n";
    out.close();
    ADD_FAILURE() << "net fault fuzz failure after " << log_.size() - 1
                  << " edits: " << what << "\n  repro: ./net_fault_fuzz_test"
                  << " --seed " << seed_ << " --edits " << edits_per_round()
                  << " --rounds " << fuzz_rounds()
                  << "\n  edit log: " << path;
  }

  void cleanup_files() {
    if (base_path_.empty()) return;
    util::remove_file(base_path_);
    util::remove_file(base_path_ + ".tmp");
    util::remove_file(DeltaJournal::journal_path(base_path_));
    util::remove_file(DeltaJournal::journal_path(base_path_) + ".tmp");
  }

  std::uint64_t seed_;
  std::mt19937_64 rng_;
  bool failed_ = false;

  std::string base_path_;
  std::unique_ptr<IncrementalRelabeler> relab_;
  std::optional<DeltaJournal> journal_;
  std::unique_ptr<serve::ForestIndex> leader_index_;
  serve::TreeId leader_tree_ = 0;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<serve::ForestIndex> follower_index_;
  serve::TreeId follower_tree_ = 0;
  std::unique_ptr<net::Replicator> repl_;
  std::unique_ptr<net::QueryClient> client_;

  // Structural mirror of the relabeler's id space (for picking edits).
  std::vector<NodeId> parent_;
  std::vector<std::uint8_t> dead_;
  std::vector<int> kids_;

  int pending_ = 0;  // edits not yet shipped as a delta
  std::uint64_t faults_armed_ = 0;
  std::uint64_t deltas_shipped_ = 0;
  std::uint64_t follower_restarts_ = 0;
  std::vector<std::string> log_;
};

void run_seed(std::uint64_t default_seed) {
  const std::uint64_t seed = g_cfg.seed != 0 ? g_cfg.seed : default_seed;
  NetFuzz fuzz(seed);
  fuzz.run();
}

TEST(NetFaultFuzz, LoopbackReplication) { run_seed(7001); }
TEST(NetFaultFuzz, LoopbackReplicationAlt) { run_seed(7002); }

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  const auto from_env = [](const char* name) -> std::string {
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  if (const std::string s = from_env("TREELAB_NET_FUZZ_SEED"); !s.empty())
    g_cfg.seed = std::strtoull(s.c_str(), nullptr, 10);
  if (const std::string s = from_env("TREELAB_NET_FUZZ_EDITS"); !s.empty())
    g_cfg.edits = std::atoi(s.c_str());
  if (const std::string s = from_env("TREELAB_NET_FUZZ_ROUNDS"); !s.empty())
    g_cfg.rounds = std::atoi(s.c_str());
  g_cfg.artifact_dir = from_env("TREELAB_NET_FUZZ_ARTIFACT_DIR");
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed")
      g_cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--edits")
      g_cfg.edits = std::atoi(argv[++i]);
    else if (a == "--rounds")
      g_cfg.rounds = std::atoi(argv[++i]);
    else if (a == "--artifact-dir")
      g_cfg.artifact_dir = argv[++i];
  }
  return RUN_ALL_TESTS();
}
