// DeltaJournal::Tail tests — the cursor protocol net::Server streams
// replication from. The single-threaded contracts first (positioning,
// catch-up, loss across checkpoints and recovery resets), then the
// concurrency property the whole design exists for: a reader tailing the
// journal file WHILE the owner appends sees only fully committed records,
// in order, with an unbroken epoch chain — never a torn frame, never a
// record a crash-recovery open() would not also replay. The concurrent
// suites are the ones the CI sanitizer jobs (ASan and TSan) run hot.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/delta_journal.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/label_store.hpp"
#include "tree/generators.hpp"
#include "util/fs.hpp"

namespace {

using namespace treelab;
using core::DeltaJournal;
using core::IncrementalRelabeler;
using core::LabelDelta;
using TailStatus = core::DeltaJournal::TailStatus;

class JournalTailTest : public testing::Test {
 protected:
  void SetUp() override {
    base_ = testing::TempDir() + "journal_tail_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".lbl";
    cleanup();
    relab_.emplace(tree::random_tree(24, 7));
  }
  void TearDown() override { cleanup(); }

  void cleanup() {
    util::remove_file(base_);
    util::remove_file(base_ + ".tmp");
    util::remove_file(DeltaJournal::journal_path(base_));
    util::remove_file(DeltaJournal::journal_path(base_) + ".tmp");
  }

  [[nodiscard]] core::JournalOptions quiet_options() const {
    core::JournalOptions o;
    o.sync = false;
    o.checkpoint_records = std::uint64_t{1} << 30;  // never fold
    o.checkpoint_bytes = std::uint64_t{1} << 40;
    return o;
  }

  /// One edit, shipped: appends the resulting delta and returns it.
  LabelDelta edit_and_append(DeltaJournal& j) {
    (void)relab_->insert_leaf(
        static_cast<tree::NodeId>(relab_->size() - 1), 1);
    LabelDelta d = relab_->make_delta();
    j.append(d);
    relab_->advance_delta(d);
    return d;
  }

  std::string base_;
  std::optional<IncrementalRelabeler> relab_;
};

TEST_F(JournalTailTest, EmptyJournalIsCaughtUpAtItsOwnChain) {
  DeltaJournal j =
      DeltaJournal::create(base_, relab_->to_loaded(), quiet_options());
  std::optional<DeltaJournal::Tail> t = j.tail_from(j.chain());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->chain(), j.chain());
  LabelDelta d;
  EXPECT_EQ(t->next(d), TailStatus::kCaughtUp);
  EXPECT_EQ(t->next(d), TailStatus::kCaughtUp);  // stable, not consuming
}

TEST_F(JournalTailTest, UnknownChainMeansSnapshotNeeded) {
  DeltaJournal j =
      DeltaJournal::create(base_, relab_->to_loaded(), quiet_options());
  EXPECT_FALSE(j.tail_from(j.chain() ^ 1).has_value());
  EXPECT_FALSE(j.tail_from(0).has_value());
}

TEST_F(JournalTailTest, ReadsAppendedRecordsInOrderThenCatchesUp) {
  DeltaJournal j =
      DeltaJournal::create(base_, relab_->to_loaded(), quiet_options());
  const std::uint64_t start = j.chain();
  std::vector<std::uint64_t> chains;  // new_chain of each appended record
  for (int i = 0; i < 5; ++i) chains.push_back(edit_and_append(j).new_chain);

  std::optional<DeltaJournal::Tail> t = j.tail_from(start);
  ASSERT_TRUE(t.has_value());
  LabelDelta d;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(t->next(d), TailStatus::kRecord) << "record " << i;
    EXPECT_EQ(d.new_chain, chains[static_cast<std::size_t>(i)]);
    EXPECT_EQ(t->chain(), d.new_chain);
  }
  EXPECT_EQ(t->next(d), TailStatus::kCaughtUp);

  // A caught-up cursor picks up records appended after it was created.
  const std::uint64_t next_chain = edit_and_append(j).new_chain;
  ASSERT_EQ(t->next(d), TailStatus::kRecord);
  EXPECT_EQ(d.new_chain, next_chain);
  EXPECT_EQ(t->next(d), TailStatus::kCaughtUp);

  // Positioning mid-journal skips exactly the records already consumed.
  std::optional<DeltaJournal::Tail> mid = j.tail_from(chains[2]);
  ASSERT_TRUE(mid.has_value());
  ASSERT_EQ(mid->next(d), TailStatus::kRecord);
  EXPECT_EQ(d.base_chain, chains[2]);
}

TEST_F(JournalTailTest, CheckpointLosesCursorsAndFoldsHistory) {
  core::JournalOptions o = quiet_options();
  DeltaJournal j = DeltaJournal::create(base_, relab_->to_loaded(), o);
  const std::uint64_t start = j.chain();
  for (int i = 0; i < 3; ++i) (void)edit_and_append(j);
  std::optional<DeltaJournal::Tail> behind = j.tail_from(start);
  ASSERT_TRUE(behind.has_value());

  j.checkpoint();
  LabelDelta d;
  EXPECT_EQ(behind->next(d), TailStatus::kLost);
  EXPECT_EQ(behind->next(d), TailStatus::kLost);  // sticky
  // The folded epochs are gone: re-planning from them demands a snapshot,
  // while the preserved chain tip tails cleanly.
  EXPECT_FALSE(j.tail_from(start).has_value());
  std::optional<DeltaJournal::Tail> tip = j.tail_from(j.chain());
  ASSERT_TRUE(tip.has_value());
  EXPECT_EQ(tip->next(d), TailStatus::kCaughtUp);
}

TEST_F(JournalTailTest, AutoCheckpointMidStreamLosesTheLaggard) {
  core::JournalOptions o = quiet_options();
  o.checkpoint_records = 4;  // folds on the 4th append
  DeltaJournal j = DeltaJournal::create(base_, relab_->to_loaded(), o);
  std::optional<DeltaJournal::Tail> t = j.tail_from(j.chain());
  ASSERT_TRUE(t.has_value());
  LabelDelta d;
  ASSERT_EQ(t->next(d), TailStatus::kCaughtUp);
  for (int i = 0; i < 2; ++i) (void)edit_and_append(j);
  // Two records are committed and readable...
  ASSERT_EQ(t->next(d), TailStatus::kRecord);
  for (int i = 0; i < 2; ++i) (void)edit_and_append(j);  // trips the fold
  EXPECT_EQ(j.record_count(), 0u);
  // ...but the cursor's remaining position died with the old file.
  EXPECT_EQ(t->next(d), TailStatus::kLost);
}

TEST_F(JournalTailTest, ConcurrentAppendWhileTailing) {
  // The real thing: one writer thread appending edits, two reader threads
  // tailing from the initial chain. Readers must observe a prefix-ordered,
  // chain-continuous stream with no torn or phantom records, and reach the
  // writer's final chain. No checkpoints here — loss-free streaming.
  DeltaJournal j =
      DeltaJournal::create(base_, relab_->to_loaded(), quiet_options());
  const std::uint64_t start = j.chain();
  constexpr int kRecords = 200;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> final_chain{0};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) (void)edit_and_append(j);
    final_chain.store(j.chain(), std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  auto read_all = [&](std::vector<std::uint64_t>& seen) {
    std::optional<DeltaJournal::Tail> t = j.tail_from(start);
    ASSERT_TRUE(t.has_value());
    LabelDelta d;
    for (;;) {
      const TailStatus st = t->next(d);
      ASSERT_NE(st, TailStatus::kLost);  // nothing folds in this test
      if (st == TailStatus::kRecord) {
        // Tail::next already verified base_chain continuity; record the
        // epochs so the final sequence can be checked against the writer.
        seen.push_back(d.new_chain);
        EXPECT_EQ(core::LabelStore::chain_hash(d.base_chain, d), d.new_chain);
        continue;
      }
      if (done.load(std::memory_order_acquire) &&
          t->chain() == final_chain.load(std::memory_order_acquire))
        return;
      std::this_thread::yield();
    }
  };

  std::vector<std::uint64_t> seen_a, seen_b;
  std::thread reader_a([&] { read_all(seen_a); });
  std::thread reader_b([&] { read_all(seen_b); });
  writer.join();
  reader_a.join();
  reader_b.join();

  ASSERT_EQ(seen_a.size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(seen_a.back(), final_chain.load());
}

TEST_F(JournalTailTest, ConcurrentTailAcrossCheckpoints) {
  // Same interleaving with aggressive folding: readers now legitimately
  // lose the tail mid-stream and must re-plan. The property that survives
  // folds: every record a reader DOES see is committed and chains from the
  // epoch the cursor sat at, and re-planning from the current chain always
  // works (the fallback-to-snapshot path net::Server drives).
  core::JournalOptions o = quiet_options();
  o.checkpoint_records = 5;
  DeltaJournal j = DeltaJournal::create(base_, relab_->to_loaded(), o);
  constexpr int kRecords = 300;

  std::atomic<bool> done{false};
  // chain()/append() belong to the owning thread (net::Server serializes
  // them under its journal mutex); the writer publishes the chain tip for
  // the readers the same way the server hands it to its subscriber pump.
  std::atomic<std::uint64_t> tip{j.chain()};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) {
      (void)edit_and_append(j);
      tip.store(j.chain(), std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  auto chase = [&](std::uint64_t& records, std::uint64_t& losses) {
    std::optional<DeltaJournal::Tail> t;
    LabelDelta d;
    while (!done.load(std::memory_order_acquire)) {
      if (!t.has_value()) {
        // The published tip races the folds: it may be gone by the time
        // the cursor is planned, in which case keep re-planning.
        t = j.tail_from(tip.load(std::memory_order_acquire));
        if (!t.has_value()) continue;
      }
      switch (t->next(d)) {
        case TailStatus::kRecord:
          ++records;
          EXPECT_EQ(core::LabelStore::chain_hash(d.base_chain, d),
                    d.new_chain);
          break;
        case TailStatus::kLost:
          ++losses;
          t.reset();
          break;
        case TailStatus::kCaughtUp:
          std::this_thread::yield();
          break;
      }
    }
  };

  std::uint64_t records_a = 0, losses_a = 0, records_b = 0, losses_b = 0;
  std::thread reader_a([&] { chase(records_a, losses_a); });
  std::thread reader_b([&] { chase(records_b, losses_b); });
  writer.join();
  reader_a.join();
  reader_b.join();

  // Both the streaming and the loss/re-plan paths must actually have run
  // (with a fold every 5 appends over 300 appends, both always do).
  EXPECT_GT(records_a + records_b, 0u);
  EXPECT_GT(losses_a + losses_b, 0u);
  EXPECT_GT(j.stats().checkpoints, 0u);
}

}  // namespace
