// Ancestry and adjacency labelings (the companion problems of the paper's
// introduction) and the LabelStore serialization container.
#include <gtest/gtest.h>

#include <sstream>

#include "core/adjacency_scheme.hpp"
#include "core/ancestry_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/label_store.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

TEST(Ancestry, AllPairsAgainstOracle) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Tree t = tree::random_tree(120, seed);
    const core::AncestryScheme s(t);
    const tree::NcaIndex oracle(t);
    for (NodeId u = 0; u < t.size(); ++u)
      for (NodeId v = 0; v < t.size(); ++v) {
        ASSERT_EQ(core::AncestryScheme::is_ancestor(s.label(u), s.label(v)),
                  oracle.is_ancestor(u, v))
            << u << " " << v;
        ASSERT_EQ(core::AncestryScheme::same_node(s.label(u), s.label(v)),
                  u == v);
      }
  }
}

TEST(Ancestry, ExhaustiveSmallTrees) {
  for (NodeId n = 1; n <= 7; ++n)
    for (const Tree& t : tree::all_rooted_trees(n)) {
      const core::AncestryScheme s(t);
      const tree::NcaIndex oracle(t);
      for (NodeId u = 0; u < t.size(); ++u)
        for (NodeId v = 0; v < t.size(); ++v)
          ASSERT_EQ(core::AncestryScheme::is_ancestor(s.label(u), s.label(v)),
                    oracle.is_ancestor(u, v));
    }
}

TEST(Ancestry, LabelsAreSmall) {
  const Tree t = tree::random_tree(1 << 14, 3);
  const core::AncestryScheme s(t);
  // ~2 log n + delta-code overhead.
  EXPECT_LE(s.stats().max_bits, 2u * 14 + 24);
}

TEST(Adjacency, AllPairsAgainstParentArray) {
  for (const auto& shape : tree::standard_shapes()) {
    const Tree t = shape.make(90, 7);
    const core::AdjacencyScheme s(t);
    for (NodeId u = 0; u < t.size(); ++u)
      for (NodeId v = 0; v < t.size(); ++v) {
        const bool want = t.parent(u) == v || t.parent(v) == u;
        ASSERT_EQ(core::AdjacencyScheme::adjacent(s.label(u), s.label(v)),
                  want)
            << shape.name << " " << u << " " << v;
      }
  }
}

TEST(Adjacency, SelfIsNotAdjacent) {
  const Tree t = tree::path(5);
  const core::AdjacencyScheme s(t);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_FALSE(core::AdjacencyScheme::adjacent(s.label(v), s.label(v)));
}

TEST(LabelStore, Roundtrip) {
  const Tree t = tree::random_tree(200, 5);
  const core::FgnwScheme f(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "fgnw", f.labels(), "v=1");
  const auto loaded = core::LabelStore::load(ss);
  EXPECT_EQ(loaded.scheme, "fgnw");
  EXPECT_EQ(loaded.params, "v=1");
  ASSERT_EQ(loaded.labels.size(), f.labels().size());
  for (std::size_t i = 0; i < loaded.labels.size(); ++i)
    ASSERT_TRUE(loaded.labels[i] == f.labels()[i]) << i;
  // Loaded labels answer queries identically.
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < t.size(); u += 7)
    for (NodeId v = 0; v < t.size(); v += 11)
      ASSERT_EQ(core::FgnwScheme::query(loaded.labels[u], loaded.labels[v]),
                oracle.distance(u, v));
}

TEST(LabelStore, EmptyAndOddSizes) {
  std::vector<bits::BitVec> labels(3);
  labels[1].append_bits(0b101, 3);
  labels[2].append_bits(0xdeadbeef, 32);
  labels[2].push_back(true);  // 33 bits: exercises non-byte-aligned tail
  std::stringstream ss;
  core::LabelStore::save(ss, "raw", labels, "");
  const auto loaded = core::LabelStore::load(ss);
  ASSERT_EQ(loaded.labels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(loaded.labels[i] == labels[i]) << i;
}

TEST(LabelStore, RejectsCorruptInput) {
  const Tree t = tree::path(10);
  const core::AncestryScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "ancestry", s.labels());
  std::string data = ss.str();

  {  // bad magic
    std::string bad = data;
    bad[0] = 'X';
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error);
  }
  {  // truncation at every prefix must throw, never crash
    for (std::size_t cut : {std::size_t{4}, std::size_t{9}, std::size_t{17}, data.size() - 1}) {
      std::stringstream in(data.substr(0, cut));
      EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error);
    }
  }
  {  // bad version
    std::string bad = data;
    bad[4] = 99;
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error);
  }
}

}  // namespace
