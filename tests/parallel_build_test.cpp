// Deterministic-construction suite: the labels a scheme emits must be
// bit-identical whatever the construction thread count, and whether the
// scheme was built from a bare Tree (private scaffold) or a shared
// TreeScaffold. This is the contract that makes parallel builds shippable:
// a centrally computed labeling can be re-derived and diffed anywhere.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "core/spanning_oracle.hpp"
#include "core/tree_scaffold.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "tree/graph.hpp"
#include "tree/hpd.hpp"
#include "util/parallel.hpp"

namespace {

using namespace treelab;

constexpr int kThreadCounts[] = {1, 2, 3, 4, 7};

/// Asserts two labelings (anything with size() and operator[](i) -> BitSpan)
/// agree bit for bit.
template <typename A, typename B>
void expect_identical(const A& a, const B& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(a[i] == b[i]) << what << ": label " << i << " differs";
}

/// Builds `make(scaffold)` serially and at several thread counts and checks
/// every variant against the serial reference.
template <typename Make>
void check_scheme_parity(const tree::Tree& t, Make&& make, const char* what) {
  const core::TreeScaffold serial(t, 1);
  const auto reference = make(serial);
  for (const int threads : kThreadCounts) {
    const core::TreeScaffold scaffold(t, threads);
    const auto variant = make(scaffold);
    expect_identical(reference.labels(), variant.labels(), what);
  }
}

TEST(ParallelBuildParity, AllSchemesSeveralSizes) {
  for (const tree::NodeId n : {1, 2, 37, 500, 4096}) {
    const tree::Tree t = tree::random_tree(n, 99 + n);
    check_scheme_parity(
        t, [](const core::TreeScaffold& s) { return core::FgnwScheme(s); },
        "fgnw");
    check_scheme_parity(
        t, [](const core::TreeScaffold& s) { return core::AlstrupScheme(s); },
        "alstrup");
    check_scheme_parity(
        t, [](const core::TreeScaffold& s) { return core::PelegScheme(s); },
        "peleg");
    check_scheme_parity(
        t,
        [](const core::TreeScaffold& s) {
          return core::ApproxScheme(s, 0.125);
        },
        "approx");
    check_scheme_parity(
        t,
        [](const core::TreeScaffold& s) { return core::KDistanceScheme(s, 6); },
        "kdistance");
  }
}

TEST(ParallelBuildParity, NcaLabeling) {
  const tree::Tree t = tree::random_tree(3000, 5);
  const tree::HeavyPathDecomposition hpd(t);
  const nca::NcaLabeling serial(hpd, 1);
  for (const int threads : kThreadCounts) {
    const nca::NcaLabeling parallel(hpd, threads);
    ASSERT_EQ(serial.num_labels(), parallel.num_labels());
    for (tree::NodeId v = 0; v < t.size(); ++v)
      ASSERT_TRUE(serial.label(v) == parallel.label(v)) << "node " << v;
  }
}

TEST(ParallelBuildParity, TreeCtorMatchesScaffoldCtor) {
  const tree::Tree t = tree::random_tree(2000, 17);
  const core::TreeScaffold scaffold(t, 4);
  expect_identical(core::FgnwScheme(t).labels(),
                   core::FgnwScheme(scaffold).labels(), "fgnw tree-vs-scaffold");
  expect_identical(core::AlstrupScheme(t).labels(),
                   core::AlstrupScheme(scaffold).labels(),
                   "alstrup tree-vs-scaffold");
  expect_identical(core::KDistanceScheme(t, 9).labels(),
                   core::KDistanceScheme(scaffold, 9).labels(),
                   "kdistance tree-vs-scaffold");
}

TEST(ParallelBuildParity, FgnwClassicAblationUnderScaffold) {
  const tree::Tree t = tree::random_tree(800, 23);
  core::FgnwScheme::Options opt;
  opt.use_classic_hpd = true;
  const core::TreeScaffold scaffold(t, 3);
  expect_identical(core::FgnwScheme(t, opt).labels(),
                   core::FgnwScheme(scaffold, opt).labels(), "fgnw classic");
}

TEST(ParallelBuildParity, SpanningOracleAcrossThreadCounts) {
  const tree::Graph g = tree::Graph::random_connected(600, 900, 7);
  // The explicit thread budget steers landmark fan-out plus per-tree
  // emission; states must not depend on it. Explicit counts are taken
  // unclamped (TREELAB_THREADS, by contrast, clamps to the core count), so
  // the multi-chunk assembly paths run even on a single-core machine.
  const auto oracle_with = [&](int threads) {
    return core::SpanningOracle(g, 3,
                                core::SpanningOracle::LandmarkPolicy::
                                    kHighestDegree,
                                /*seed=*/0, threads);
  };
  const core::SpanningOracle serial = oracle_with(1);
  for (const int threads : {2, 4, 5}) {
    const core::SpanningOracle parallel = oracle_with(threads);
    expect_identical(serial.states(), parallel.states(), "oracle states");
  }
}

TEST(ParallelBuildParity, QueriesAgreeOnParallelBuiltLabels) {
  // End to end: labels built with 4 threads answer exactly like the serial
  // reference (spot-checked over random pairs).
  const tree::Tree t = tree::random_tree(1500, 31);
  const core::TreeScaffold s1(t, 1), s4(t, 4);
  const core::FgnwScheme f1(s1), f4(s4);
  std::uint64_t seed = 1234567;
  for (int i = 0; i < 2000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto u = static_cast<tree::NodeId>((seed >> 20) % 1500);
    const auto v = static_cast<tree::NodeId>((seed >> 40) % 1500);
    ASSERT_EQ(core::FgnwScheme::query(f1.label(u), f1.label(v)),
              core::FgnwScheme::query(f4.label(u), f4.label(v)));
  }
}

TEST(ParallelHelper, SplitRangesCoversExactly) {
  for (const std::size_t n : {0u, 1u, 5u, 64u, 1000u})
    for (const std::size_t c : {1u, 2u, 3u, 7u, 64u}) {
      const auto off = util::split_ranges(n, c);
      ASSERT_GE(off.size(), 2u);
      EXPECT_EQ(off.front(), 0u);
      EXPECT_EQ(off.back(), n);
      for (std::size_t i = 0; i + 1 < off.size(); ++i)
        EXPECT_LE(off[i], off[i + 1]);
    }
}

}  // namespace
