// LevelAncestorScheme (Section 3.6): labels are distinct, the parent map
// computed from a label alone must equal the true parent's label, and k-th
// ancestors follow. Also the Lemma 3.6 / Fig. 4 universal-tree construction
// and the brute-force minimal universal trees (Lemma 3.7 ground truth).
#include <gtest/gtest.h>

#include <set>

#include "core/level_ancestor_scheme.hpp"
#include "core/universal_tree.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treelab;
using core::LevelAncestorScheme;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

void expect_parent_map_exact(const Tree& t) {
  const LevelAncestorScheme s(t);
  std::set<std::string> seen;
  for (NodeId v = 0; v < t.size(); ++v) {
    ASSERT_TRUE(seen.insert(s.label(v).to_string()).second)
        << "duplicate label at " << v;
    const auto p = LevelAncestorScheme::parent(s.label(v));
    if (t.parent(v) == kNoNode) {
      EXPECT_FALSE(p.has_value());
    } else {
      ASSERT_TRUE(p.has_value()) << v;
      EXPECT_TRUE(*p == s.label(t.parent(v)))
          << "v=" << v << " got " << p->to_string() << " want "
          << s.label(t.parent(v)).to_string();
    }
  }
}

class LaShapeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LaShapeTest, ParentMap) {
  const auto& shape = tree::standard_shapes()[GetParam()];
  expect_parent_map_exact(shape.make(120, 29));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LaShapeTest,
                         ::testing::Range<std::size_t>(0, 9));

TEST(LevelAncestor, ExhaustiveSmallTrees) {
  for (NodeId n = 1; n <= 7; ++n)
    for (const Tree& t : tree::all_rooted_trees(n)) expect_parent_map_exact(t);
}

TEST(LevelAncestor, KthAncestor) {
  const Tree t = tree::random_tree(150, 5);
  const LevelAncestorScheme s(t);
  for (NodeId v = 0; v < t.size(); ++v) {
    NodeId anc = v;
    for (std::uint64_t k = 0;; ++k) {
      const auto got = LevelAncestorScheme::level_ancestor(s.label(v), k);
      if (anc == kNoNode) {
        EXPECT_FALSE(got.has_value());
        break;
      }
      ASSERT_TRUE(got.has_value());
      EXPECT_TRUE(*got == s.label(anc)) << "v=" << v << " k=" << k;
      anc = t.parent(anc);
    }
  }
}

TEST(LevelAncestor, DepthOfLabel) {
  const Tree t = tree::random_tree(80, 2);
  const LevelAncestorScheme s(t);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_EQ(LevelAncestorScheme::depth_of_label(s.label(v)),
              static_cast<std::uint64_t>(t.depth(v)));
}

TEST(LevelAncestor, RejectsWeighted) {
  EXPECT_THROW(LevelAncestorScheme(tree::hm_tree(2, 4, 1)),
               std::invalid_argument);
}

TEST(UniversalTree, EmbedsBasics) {
  // A path embeds in anything with sufficient depth; a star needs degree.
  EXPECT_TRUE(core::embeds(tree::path(6), tree::path(4)));
  EXPECT_FALSE(core::embeds(tree::path(3), tree::path(4)));
  EXPECT_TRUE(core::embeds(tree::star(7), tree::star(4)));
  EXPECT_FALSE(core::embeds(tree::star(3), tree::star(4)));
  EXPECT_FALSE(core::embeds(tree::star(10), tree::path(3)));
  EXPECT_TRUE(core::embeds(tree::balanced(2, 3), tree::balanced(2, 2)));
  // Embedding maps children to children: a deeper caterpillar pattern.
  EXPECT_TRUE(core::embeds(tree::caterpillar(4, 2), tree::caterpillar(3, 1)));
  EXPECT_FALSE(core::embeds(tree::caterpillar(3, 1), tree::caterpillar(3, 2)));
}

TEST(UniversalTree, MinimalSizesMatchKnownValues) {
  // Smallest rooted trees containing all rooted trees on n nodes.
  EXPECT_EQ(core::minimal_universal_tree_size(1), 1);
  EXPECT_EQ(core::minimal_universal_tree_size(2), 2);
  EXPECT_EQ(core::minimal_universal_tree_size(3), 4);
  // Witness of size 6: -1 0 1 1 1 2 (a spine node with three children, one
  // extended) embeds all four rooted trees on 4 nodes; sizes 4-5 fail.
  EXPECT_EQ(core::minimal_universal_tree_size(4), 6);
}

TEST(UniversalTree, ParentLabelsGiveUniversalTree) {
  const auto res = core::universal_tree_from_parent_labels(6);
  EXPECT_EQ(res.trees_labeled, 1u + 1 + 2 + 4 + 9 + 20);
  EXPECT_FALSE(res.had_cycles);  // parent labels strictly decrease in depth
  EXPECT_GE(res.num_labels, 6u);
  // Lemma 3.6: the derived universal tree has at most 2^S(n) + 1 nodes.
  EXPECT_LE(res.universal_size,
            (std::size_t{1} << std::min<std::size_t>(40, res.max_label_bits)) + 1);
  // And it must be at least as large as the true minimal universal tree.
  EXPECT_GE(res.universal_size,
            static_cast<std::size_t>(core::minimal_universal_tree_size(4)));
}

}  // namespace
