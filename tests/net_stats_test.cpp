// Wire-level round trips for the Stats RPC (kStats -> kStatsReply) plus
// the replication-lag metrics: after real query traffic the counters and
// latency histograms a dump carries must be non-zero; after a follower
// converges the lag gauges must read caught-up; and a malformed kStats
// frame (non-empty payload) must be rejected without hurting the server.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/delta_journal.hpp"
#include "core/incremental_relabeler.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/net_io.hpp"
#include "net/replicator.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "serve/forest_index.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treelab;
using core::DeltaJournal;
using core::IncrementalRelabeler;

std::uint64_t stat_value(const std::vector<net::StatLine>& lines,
                         const std::string& name) {
  for (const auto& l : lines)
    if (l.name == name) return l.value;
  ADD_FAILURE() << "stats dump is missing " << name;
  return 0;
}

bool has_stat(const std::vector<net::StatLine>& lines,
              const std::string& name) {
  return std::any_of(lines.begin(), lines.end(),
                     [&](const net::StatLine& l) { return l.name == name; });
}

TEST(NetStats, QueryTrafficShowsUpInStatsReply) {
  serve::ForestIndex index;
  IncrementalRelabeler relab(tree::random_tree(300, 11));
  const serve::TreeId tree0 = index.add(relab.to_loaded());

  net::Server server(index);
  server.start();
  net::QueryClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected());

  std::vector<serve::Request> reqs;
  for (tree::NodeId u = 0; u < 64; ++u)
    reqs.push_back({tree0, u, static_cast<tree::NodeId>(299 - u)});
  std::vector<serve::QueryResult> results;
  ASSERT_EQ(client.query_batch(reqs, results),
            net::QueryClient::BatchStatus::kOk);
  ASSERT_EQ(results.size(), reqs.size());

  std::vector<net::StatLine> lines;
  ASSERT_TRUE(client.stats(lines));
  ASSERT_FALSE(lines.empty());
  // The wire dump is the registry snapshot: name-sorted.
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end(),
                             [](const net::StatLine& a,
                                const net::StatLine& b) {
                               return a.name < b.name;
                             }));
  // The batch we just ran is visible in the server's counters, its request
  // latency histogram, and the serving layer's batch histogram. The
  // registry is process-global, so across a suite these only grow: >=.
  EXPECT_GE(stat_value(lines, "net.server.query_batches"), 1u);
  EXPECT_GE(stat_value(lines, "net.server.queries"), reqs.size());
  EXPECT_GE(stat_value(lines, "net.server.request_ns_count"), 1u);
  EXPECT_GE(stat_value(lines, "net.server.stats_requests"), 1u);
  EXPECT_GE(stat_value(lines, "serve.batch.latency_ns_count"), 1u);
  EXPECT_GE(stat_value(lines, "serve.query.latency_ns_count"), 1u);
  // Cache + util metrics ride the same dump.
  EXPECT_TRUE(has_stat(lines, "serve.cache.hits"));
  EXPECT_TRUE(has_stat(lines, "serve.trees.total"));
  EXPECT_TRUE(has_stat(lines, "util.thread_env_rejections"));
  server.stop();
}

TEST(NetStats, ReplicationLagReachesZeroAndCaughtUpFlows) {
  const std::string base_path =
      testing::TempDir() + "/net_stats_base_" + std::to_string(::getpid()) +
      ".lbl";
  IncrementalRelabeler relab(tree::random_tree(120, 3));
  core::JournalOptions jopt;
  jopt.sync = false;
  DeltaJournal journal = DeltaJournal::create(base_path, relab.to_loaded(),
                                              jopt);

  serve::ForestIndex leader_index;
  const serve::TreeId ltree = leader_index.add(relab.to_loaded());
  net::Server server(leader_index);
  server.attach_journal(&journal, ltree);
  server.start();

  // Churn a few deltas through the journal before the follower shows up.
  for (int round = 0; round < 5; ++round) {
    for (int e = 0; e < 8; ++e)
      (void)relab.insert_leaf(
          static_cast<tree::NodeId>((round * 8 + e) % relab.size()));
    const core::LabelDelta d = relab.make_delta();
    server.replicate(d);
    relab.advance_delta(d);
    leader_index.apply_delta(ltree, d);
  }
  server.announce_end();

  serve::ForestIndex follower_index;
  const serve::TreeId ftree = follower_index.add(
      {IncrementalRelabeler::scheme_tag(), journal.params(), {}});
  net::ReplicatorOptions ropt;
  ropt.port = server.port();
  ropt.tree = ftree;
  ropt.stop_on_end = true;
  ropt.max_attempts = 60;
  net::Replicator repl(follower_index, ropt);
  ASSERT_TRUE(repl.run());

  // Follower side: the stream ended, so the leader told us we are caught
  // up (kCaughtUp and/or kEnd) and the behind gauge must read 0.
  const net::Replicator::Stats rs = repl.stats();
  EXPECT_GE(rs.ends_seen, 1u);
  EXPECT_GE(rs.snapshots_applied + rs.deltas_applied, 1u);
  EXPECT_EQ(obs::Registry::global().gauge("net.replicator.behind").value(),
            0u);
  EXPECT_EQ(obs::Registry::global().gauge("net.replicator.chain").value(),
            follower_index.chain(ftree));

  // Leader side, over the wire: journal activity, the caught-up
  // notification, and a lag gauge at 0 (the only subscriber converged).
  net::QueryClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected());
  std::vector<net::StatLine> lines;
  ASSERT_TRUE(client.stats(lines));
  EXPECT_GE(stat_value(lines, "journal.appends"), 1u);
  EXPECT_GE(stat_value(lines, "journal.append_ns_count"), 1u);
  EXPECT_GE(stat_value(lines, "net.server.subscribes"), 1u);
  EXPECT_GE(stat_value(lines, "net.server.caught_up_sent"), 1u);
  EXPECT_GE(stat_value(lines, "net.server.snapshots_sent") +
                stat_value(lines, "net.server.deltas_sent"),
            1u);
  EXPECT_EQ(stat_value(lines, "net.server.subscriber_lag_records"), 0u);
  server.stop();
}

TEST(NetStats, MalformedStatsFrameIsRejected) {
  serve::ForestIndex index;
  IncrementalRelabeler relab(tree::random_tree(50, 5));
  const serve::TreeId tree0 = index.add(relab.to_loaded());
  net::Server server(index);
  server.start();

  // A kStats frame must carry an empty payload; anything else is a
  // protocol violation answered with kError + close.
  const int fd = net::connect_with_timeout("127.0.0.1", server.port(), 2'000);
  ASSERT_GE(fd, 0);
  const std::string bad = net::encode_frame(net::MsgType::kStats, "junk");
  std::size_t sent = 0;
  while (sent < bad.size()) {
    const net::IoResult w =
        net::write_some(fd, bad.data() + sent, bad.size() - sent);
    ASSERT_EQ(w.status, net::IoStatus::kOk);
    sent += w.n;
  }
  net::FrameReader reader;
  net::Frame reply;
  bool got_reply = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const net::FrameReader::Status st = reader.next(reply);
    if (st == net::FrameReader::Status::kFrame) {
      got_reply = true;
      break;
    }
    ASSERT_NE(st, net::FrameReader::Status::kBad);
    if (!net::wait_readable(fd, 100)) continue;
    char buf[4096];
    const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
    if (r.status == net::IoStatus::kOk)
      reader.feed(buf, r.n);
    else if (r.status != net::IoStatus::kWouldBlock)
      break;
  }
  ASSERT_TRUE(got_reply);
  EXPECT_EQ(reply.type, net::MsgType::kError);
  ::close(fd);

  // The violation is counted, and the server still answers honest peers.
  EXPECT_GE(server.stats().bad_frames, 1u);
  net::QueryClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected());
  std::vector<serve::Request> reqs{{tree0, 0, 49}};
  std::vector<serve::QueryResult> results;
  EXPECT_EQ(client.query_batch(reqs, results),
            net::QueryClient::BatchStatus::kOk);
  std::vector<net::StatLine> lines;
  EXPECT_TRUE(client.stats(lines));
  EXPECT_GE(stat_value(lines, "net.server.bad_frames"), 1u);
  server.stop();
}

}  // namespace
