// TreeScaffold's computed-once contract: the six lazy components (HPD, NCA,
// binarize, binarized HPD, collapsed tree, binarized NCA) are each built
// exactly once per scaffold and shared by reference across every scheme
// constructed from it — the whole point of the shared build substrate.
#include <gtest/gtest.h>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "core/tree_scaffold.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treelab;
using tree::Tree;

TEST(TreeScaffold, ComponentsAreLazyBuiltOnceAndPointerStable) {
  const Tree t = tree::random_tree(400, 61);
  const core::TreeScaffold sc(t, 2);
  EXPECT_EQ(sc.components_built(), 0);  // nothing until first use

  const auto* hpd = &sc.hpd();
  EXPECT_EQ(sc.components_built(), 1);
  const auto* nca = &sc.nca();
  EXPECT_EQ(sc.components_built(), 2);
  const auto* bin = &sc.binarized();
  const auto* bin_hpd = &sc.binarized_hpd();
  const auto* collapsed = &sc.collapsed();
  const auto* bin_nca = &sc.binarized_nca();
  EXPECT_EQ(sc.components_built(), 6);

  // Re-requests hand out the same objects, building nothing.
  EXPECT_EQ(&sc.hpd(), hpd);
  EXPECT_EQ(&sc.nca(), nca);
  EXPECT_EQ(&sc.binarized(), bin);
  EXPECT_EQ(&sc.binarized_hpd(), bin_hpd);
  EXPECT_EQ(&sc.collapsed(), collapsed);
  EXPECT_EQ(&sc.binarized_nca(), bin_nca);
  EXPECT_EQ(sc.components_built(), 6);
}

TEST(TreeScaffold, FiveSchemeSuiteSharesOneBuildOfEachComponent) {
  const Tree t = tree::random_tree(400, 62);
  const core::TreeScaffold sc(t, 1);
  const core::FgnwScheme fgnw(sc);       // binarize + bin HPD + collapsed
                                         // + bin NCA
  const int after_fgnw = sc.components_built();
  const core::AlstrupScheme alstrup(sc); // HPD + NCA
  const core::PelegScheme peleg(sc);     // HPD (shared)
  const core::ApproxScheme approx(sc, 0.125);
  const core::KDistanceScheme kdist(sc, 8);
  // Six components total across all five schemes — nothing rebuilt.
  EXPECT_EQ(sc.components_built(), 6);
  EXPECT_GE(after_fgnw, 4);

  // And the shared builds produce the same labels as standalone ones.
  const core::FgnwScheme own(t);
  for (tree::NodeId v = 0; v < t.size(); v += 37)
    EXPECT_TRUE(fgnw.label(v) == own.label(v)) << "node " << v;
}

TEST(TreeScaffold, DistinctScaffoldsAreIndependent) {
  const Tree t = tree::random_tree(200, 63);
  const core::TreeScaffold a(t, 1), b(t, 1);
  (void)a.hpd();
  EXPECT_EQ(a.components_built(), 1);
  EXPECT_EQ(b.components_built(), 0);
  EXPECT_NE(&a.hpd(), &b.hpd());
}

}  // namespace
