// LruCache unit tests: recency order under get/put interleavings,
// byte-budget accounting through inserts, replacements, evictions and
// erase_if, the never-evict-the-just-inserted-entry rule, and the
// degenerate budgets (zero, and entries larger than the whole cache).
// ForestIndex relies on each of these when it serves attached labels out
// of its per-shard caches.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/lru_cache.hpp"

namespace {

using treelab::serve::LruCache;

using Cache = LruCache<int, std::string>;

// The cache has no iteration API (ForestIndex never needs one); contents
// are observed through get(), which also refreshes recency — tests that
// probe without wanting the refresh say so explicitly.
bool contains(Cache& c, int key) { return c.get(key) != nullptr; }

TEST(LruCache, GetMissThenHit) {
  Cache c(100);
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_EQ(c.misses(), 1u);
  c.put(1, "one", 10);
  std::string* v = c.get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.bytes(), 10u);
}

TEST(LruCache, EvictsColdEndInOrder) {
  Cache c(30);
  c.put(1, "a", 10);
  c.put(2, "b", 10);
  c.put(3, "c", 10);  // full: order hot→cold is 3, 2, 1
  c.put(4, "d", 10);  // evicts 1
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_FALSE(contains(c, 1));
  EXPECT_TRUE(contains(c, 2));  // probing 2 also re-heats it: order 2, 4, 3
  c.put(5, "e", 10);            // evicts 3, the coldest
  EXPECT_FALSE(contains(c, 3));
  EXPECT_TRUE(contains(c, 2));
  EXPECT_TRUE(contains(c, 4));
  EXPECT_TRUE(contains(c, 5));
  EXPECT_EQ(c.evictions(), 2u);
  EXPECT_EQ(c.bytes(), 30u);
}

TEST(LruCache, GetRefreshesRecency) {
  Cache c(30);
  c.put(1, "a", 10);
  c.put(2, "b", 10);
  c.put(3, "c", 10);
  ASSERT_TRUE(contains(c, 1));  // 1 is now the hottest
  c.put(4, "d", 10);            // evicts 2, not 1
  EXPECT_TRUE(contains(c, 1));
  EXPECT_FALSE(contains(c, 2));
  EXPECT_TRUE(contains(c, 3));
}

TEST(LruCache, ReplacementReleasesOldCost) {
  Cache c(100);
  c.put(1, "small", 10);
  c.put(1, "large", 60);  // same key: old cost released first
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.bytes(), 60u);
  EXPECT_EQ(*c.get(1), "large");
  c.put(1, "tiny", 1);
  EXPECT_EQ(c.bytes(), 1u);
  EXPECT_EQ(c.evictions(), 0u);  // replacements never counted as evictions
}

TEST(LruCache, OversizedEntrySurvivesUntilNextPut) {
  Cache c(10);
  c.put(1, "huge", 1000);  // larger than the whole budget
  // The just-inserted entry is never evicted: an oversized label still
  // gets its attach-once benefit for the batch that touched it.
  EXPECT_TRUE(contains(c, 1));
  EXPECT_EQ(c.bytes(), 1000u);
  c.put(2, "next", 5);  // now the oversized one goes
  EXPECT_FALSE(contains(c, 1));
  EXPECT_TRUE(contains(c, 2));
  EXPECT_EQ(c.bytes(), 5u);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, ZeroBudgetHoldsExactlyTheLatest) {
  Cache c(0);
  c.put(1, "a", 1);
  EXPECT_TRUE(contains(c, 1));  // never evict the newest, even at budget 0
  c.put(2, "b", 1);
  EXPECT_FALSE(contains(c, 1));
  EXPECT_TRUE(contains(c, 2));
  EXPECT_EQ(c.size(), 1u);
  // Inserting a zero-cost entry still evicts the charged one (the cache
  // is over its zero budget); zero-cost entries themselves accumulate.
  c.put(3, "c", 0);
  EXPECT_FALSE(contains(c, 2));
  EXPECT_EQ(c.bytes(), 0u);
  c.put(4, "d", 0);
  EXPECT_TRUE(contains(c, 3));
  EXPECT_TRUE(contains(c, 4));
  EXPECT_EQ(c.size(), 2u);
}

TEST(LruCache, EraseIfReleasesCostWithoutCountingEvictions) {
  LruCache<std::pair<int, int>, int,
           decltype([](const std::pair<int, int>& k) {
             return std::hash<int>()(k.first * 31 + k.second);
           })>
      c(1000);
  // ForestIndex keys attached labels by (tree, node) and invalidates one
  // tree's entries on hot swap — model exactly that shape.
  for (int tree = 0; tree < 3; ++tree)
    for (int node = 0; node < 4; ++node)
      c.put({tree, node}, tree * 100 + node, 10);
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(c.bytes(), 120u);
  const std::size_t removed =
      c.erase_if([](const std::pair<int, int>& k) { return k.first == 1; });
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.bytes(), 80u);
  EXPECT_EQ(c.evictions(), 0u);  // invalidation, not budgeting
  EXPECT_EQ(c.get({1, 2}), nullptr);
  ASSERT_NE(c.get({2, 3}), nullptr);
  EXPECT_EQ(*c.get({2, 3}), 203);
  // Removing everything leaves a clean, reusable cache.
  EXPECT_EQ(c.erase_if([](const std::pair<int, int>&) { return true; }), 8u);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.bytes(), 0u);
  c.put({9, 9}, 999, 10);
  EXPECT_TRUE(c.get({9, 9}) != nullptr);
}

TEST(LruCache, EraseIfOnEmptyAndNoMatch) {
  Cache c(100);
  EXPECT_EQ(c.erase_if([](int) { return true; }), 0u);
  c.put(1, "a", 10);
  EXPECT_EQ(c.erase_if([](int k) { return k == 42; }), 0u);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.bytes(), 10u);
}

TEST(LruCache, StatsAccumulate) {
  Cache c(20);
  c.put(1, "a", 10);
  c.put(2, "b", 10);
  (void)contains(c, 1);
  (void)contains(c, 1);
  (void)contains(c, 7);
  c.put(3, "c", 10);  // evicts 2 (1 was re-heated)
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_FALSE(contains(c, 2));
  EXPECT_EQ(c.misses(), 2u);
}

TEST(LruCache, BudgetInvariantUnderChurn) {
  // After any burst of puts, bytes() never exceeds max(capacity, cost of
  // the newest entry) — the documented bound.
  Cache c(64);
  std::size_t last_cost = 0;
  for (int i = 0; i < 500; ++i) {
    last_cost = static_cast<std::size_t>((i * 7) % 40);
    // += rather than `"v" + std::to_string(i)`: GCC 12's -Wrestrict
    // misfires on `const char* + std::string&&` at -O2 (upstream 105329).
    std::string val = "v";
    val += std::to_string(i);
    c.put(i % 17, val, last_cost);
    EXPECT_LE(c.bytes(), std::max<std::size_t>(64, last_cost))
        << "after put " << i;
    EXPECT_GE(c.size(), 1u);
  }
}

}  // namespace
