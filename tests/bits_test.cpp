// Unit and property tests for the bits substrate: BitVec, BitReader/Writer,
// Elias codes, alphabetic codes, rank/select, and the Lemma 2.2 monotone
// sequence codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bits/alphabetic.hpp"
#include "bits/bitio.hpp"
#include "bits/bitvec.hpp"
#include "bits/monotone.hpp"
#include "bits/rank_select.hpp"
#include "bits/wordops.hpp"

namespace {

using namespace treelab::bits;

TEST(WordOps, Basics) {
  EXPECT_EQ(bitwidth(0), 0);
  EXPECT_EQ(bitwidth(1), 1);
  EXPECT_EQ(bitwidth(255), 8);
  EXPECT_EQ(bitwidth(256), 9);
  EXPECT_EQ(msb(1), 0);
  EXPECT_EQ(msb(0x8000000000000000ull), 63);
  EXPECT_EQ(lsb(8), 3);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(pow2_floor(1), 1u);
  EXPECT_EQ(pow2_floor(100), 64u);
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(3), 7u);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(WordOps, CommonPrefix) {
  EXPECT_EQ(common_prefix_len(0b1010, 0b1010, 4), 4);
  EXPECT_EQ(common_prefix_len(0b1010, 0b1011, 4), 3);
  EXPECT_EQ(common_prefix_len(0b1010, 0b0010, 4), 0);
}

TEST(BitVec, PushAndGet) {
  BitVec v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 3 == 0);
  ASSERT_EQ(v.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
  EXPECT_THROW((void)v.at(200), std::out_of_range);
}

TEST(BitVec, AppendReadBitsRoundtrip) {
  std::mt19937_64 rng(1);
  BitVec v;
  std::vector<std::pair<std::uint64_t, int>> fields;
  for (int i = 0; i < 500; ++i) {
    const int w = static_cast<int>(rng() % 65);
    const std::uint64_t x = rng() & low_mask(w);
    fields.emplace_back(x, w);
    v.append_bits(x, w);
  }
  std::size_t pos = 0;
  for (auto [x, w] : fields) {
    EXPECT_EQ(v.read_bits(pos, w), x);
    pos += static_cast<std::size_t>(w);
  }
  EXPECT_EQ(pos, v.size());
}

TEST(BitVec, SliceAndEquality) {
  std::mt19937_64 rng(2);
  BitVec v;
  for (int i = 0; i < 300; ++i) v.push_back(rng() & 1);
  const BitVec s = v.slice(67, 130);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(s.get(i), v.get(67 + i));
  BitVec w = v.slice(0, v.size());
  EXPECT_TRUE(w == v);
  w.set(5, !w.get(5));
  EXPECT_FALSE(w == v);
}

TEST(BitVec, Popcount) {
  BitVec v;
  std::size_t ones = 0;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const bool b = rng() & 1;
    ones += b;
    v.push_back(b);
  }
  EXPECT_EQ(v.popcount(), ones);
}

TEST(BitIo, UnaryGammaDeltaRoundtrip) {
  BitWriter w;
  std::vector<std::uint64_t> xs;
  std::mt19937_64 rng(4);
  for (int i = 0; i < 300; ++i) {
    std::uint64_t x = rng() >> (rng() % 60);
    xs.push_back(x);
    w.put_unary(x % 17);
    w.put_gamma(x + 1);
    w.put_delta(x + 1);
    w.put_gamma0(x % 1000);
    w.put_delta0(x);
  }
  const BitVec enc = w.take();
  BitReader r(enc);
  for (std::uint64_t x : xs) {
    EXPECT_EQ(r.get_unary(), x % 17);
    EXPECT_EQ(r.get_gamma(), x + 1);
    EXPECT_EQ(r.get_delta(), x + 1);
    EXPECT_EQ(r.get_gamma0(), x % 1000);
    EXPECT_EQ(r.get_delta0(), x);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, TruncatedInputThrows) {
  BitWriter w;
  w.put_delta(123456789);
  BitVec enc = w.take();
  const BitVec cut = enc.slice(0, enc.size() - 3);
  BitReader r(cut);
  EXPECT_THROW((void)r.get_delta(), DecodeError);
}

TEST(BitIo, GammaCodeLengths) {
  // gamma(x) = 2 floor(log x) + 1 bits.
  for (std::uint64_t x : {1ull, 2ull, 3ull, 4ull, 100ull, 1ull << 40}) {
    BitWriter w;
    w.put_gamma(x);
    EXPECT_EQ(w.bit_count(), 2 * static_cast<std::size_t>(msb(x)) + 1) << x;
  }
}

TEST(RankSelect, AgainstNaive) {
  std::mt19937_64 rng(5);
  for (std::size_t n : {1u, 63u, 64u, 65u, 511u, 512u, 513u, 5000u}) {
    BitVec v;
    std::vector<bool> ref;
    for (std::size_t i = 0; i < n; ++i) {
      const bool b = (rng() % 100) < 30;
      ref.push_back(b);
      v.push_back(b);
    }
    const RankSelect rs(v);
    std::size_t ones = 0;
    std::vector<std::size_t> one_pos, zero_pos;
    for (std::size_t i = 0; i <= n; ++i) {
      EXPECT_EQ(rs.rank1(i), ones) << "n=" << n << " i=" << i;
      EXPECT_EQ(rs.rank0(i), i - ones);
      if (i < n) {
        (ref[i] ? one_pos : zero_pos).push_back(i);
        ones += ref[i];
      }
    }
    EXPECT_EQ(rs.ones(), one_pos.size());
    for (std::size_t k = 0; k < one_pos.size(); ++k)
      EXPECT_EQ(rs.select1(k), one_pos[k]) << "n=" << n << " k=" << k;
    for (std::size_t k = 0; k < zero_pos.size(); ++k)
      EXPECT_EQ(rs.select0(k), zero_pos[k]) << "n=" << n << " k=" << k;
  }
}

TEST(WordOps, SelectInWord) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t w = rng() & rng();  // varied density
    int k = 0;
    for (int i = 0; i < 64; ++i) {
      if ((w >> i) & 1) {
        EXPECT_EQ(select_in_word(w, k++), i) << w;
      }
    }
  }
  EXPECT_EQ(select_in_word(1, 0), 0);
  EXPECT_EQ(select_in_word(std::uint64_t{1} << 63, 0), 63);
  EXPECT_EQ(select_in_word(~std::uint64_t{0}, 63), 63);
}

TEST(RankSelect, SparseAgainstNaive) {
  // ~1% density across many superblocks exercises the sampled-select
  // superblock walk; dense stretches exercise the in-superblock word pick.
  std::mt19937_64 rng(17);
  for (int density : {1, 97}) {
    BitVec v;
    std::vector<std::size_t> one_pos, zero_pos;
    for (std::size_t i = 0; i < 40000; ++i) {
      const bool b = (rng() % 100) < static_cast<unsigned>(density);
      (b ? one_pos : zero_pos).push_back(i);
      v.push_back(b);
    }
    const RankSelect rs(std::move(v));
    ASSERT_EQ(rs.ones(), one_pos.size());
    for (std::size_t k = 0; k < one_pos.size(); k += 3)
      ASSERT_EQ(rs.select1(k), one_pos[k]) << "density=" << density;
    for (std::size_t k = 0; k < zero_pos.size(); k += 3)
      ASSERT_EQ(rs.select0(k), zero_pos[k]) << "density=" << density;
    for (std::size_t i = 0; i <= 40000; i += 977)
      ASSERT_EQ(rs.rank1(i),
                static_cast<std::size_t>(
                    std::lower_bound(one_pos.begin(), one_pos.end(), i) -
                    one_pos.begin()));
  }
}

TEST(BitVec, MoveLeavesSourceEmpty) {
  BitVec v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 3 == 0);
  const BitVec copy = v;
  BitVec moved = std::move(v);
  EXPECT_EQ(moved, copy);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): contract test
  EXPECT_EQ(v.size(), 0u);
  v = std::move(moved);
  EXPECT_EQ(v, copy);
  EXPECT_TRUE(moved.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(RankSelect, AllOnesAllZeros) {
  for (bool bit : {false, true}) {
    BitVec v;
    for (int i = 0; i < 1000; ++i) v.push_back(bit);
    const RankSelect rs(v);
    EXPECT_EQ(rs.ones(), bit ? 1000u : 0u);
    for (std::size_t k = 0; k < 1000; ++k) {
      if (bit)
        EXPECT_EQ(rs.select1(k), k);
      else
        EXPECT_EQ(rs.select0(k), k);
    }
  }
}

class MonotoneSeqParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MonotoneSeqParamTest, RoundtripAccessSuccessor) {
  const auto [s, m] = GetParam();
  std::mt19937_64 rng(s * 1000003 + m);
  std::vector<std::uint64_t> xs(s);
  for (auto& x : xs) x = m == 0 ? 0 : rng() % (m + 1);
  std::sort(xs.begin(), xs.end());

  const MonotoneSeq seq = MonotoneSeq::encode(xs, m);
  ASSERT_EQ(seq.size(), s);
  for (std::size_t i = 0; i < s; ++i) EXPECT_EQ(seq.get(i), xs[i]) << i;

  // Successor against naive, probing values around every element.
  const auto naive_succ = [&](std::uint64_t x) {
    for (std::size_t i = 0; i < s; ++i)
      if (xs[i] >= x) return i;
    return s;
  };
  for (std::uint64_t probe : {std::uint64_t{0}, m / 2, m}) {
    EXPECT_EQ(seq.successor(probe), naive_succ(probe));
  }
  for (std::size_t i = 0; i < s; ++i) {
    EXPECT_EQ(seq.successor(xs[i]), naive_succ(xs[i]));
    if (xs[i] > 0) {
      EXPECT_EQ(seq.successor(xs[i] - 1), naive_succ(xs[i] - 1));
    }
    EXPECT_EQ(seq.successor(xs[i] + 1), naive_succ(xs[i] + 1));
  }

  // Serialization roundtrip via a surrounding stream.
  BitWriter w;
  w.put_delta0(42);
  seq.write_to(w);
  w.put_delta0(99);
  const BitVec enc = w.take();
  BitReader r(enc);
  EXPECT_EQ(r.get_delta0(), 42u);
  const MonotoneSeq back = MonotoneSeq::read_from(r);
  EXPECT_EQ(r.get_delta0(), 99u);
  ASSERT_EQ(back.size(), s);
  for (std::size_t i = 0; i < s; ++i) EXPECT_EQ(back.get(i), xs[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonotoneSeqParamTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 7, 31, 100, 500),
                       ::testing::Values<std::uint64_t>(0, 1, 5, 63, 1000,
                                                        1u << 20)));

TEST(MonotoneSeq, SpaceBound) {
  // O(s * max(1, log(M/s))) bits, with a modest constant.
  const std::size_t s = 256;
  for (std::uint64_t m : {std::uint64_t{256}, std::uint64_t{1} << 16,
                          std::uint64_t{1} << 30}) {
    std::vector<std::uint64_t> xs(s);
    std::mt19937_64 rng(m);
    for (auto& x : xs) x = rng() % (m + 1);
    std::sort(xs.begin(), xs.end());
    const MonotoneSeq seq = MonotoneSeq::encode(xs, m);
    const double per = static_cast<double>(seq.bit_size()) / s;
    const double bound =
        4.0 * std::max(1.0, std::log2(static_cast<double>(m) / s)) + 8;
    EXPECT_LE(per, bound) << "m=" << m;
  }
}

TEST(MonotoneSeq, LcsOfPrefixes) {
  const std::vector<std::uint64_t> a{1, 3, 3, 7, 9, 12};
  const std::vector<std::uint64_t> b{0, 3, 3, 7, 9, 12};
  const MonotoneSeq sa = MonotoneSeq::encode(a, 20);
  const MonotoneSeq sb = MonotoneSeq::encode(b, 20);
  // Full prefixes share suffix 3,3,7,9,12 (5 elements).
  EXPECT_EQ(MonotoneSeq::lcs_of_prefixes(sa, 6, sb, 6), 5u);
  // Prefixes of length 4: a=1,3,3,7 b=0,3,3,7 -> common suffix 3.
  EXPECT_EQ(MonotoneSeq::lcs_of_prefixes(sa, 4, sb, 4), 3u);
  EXPECT_EQ(MonotoneSeq::lcs_of_prefixes(sa, 6, sa, 6), 6u);
  EXPECT_EQ(MonotoneSeq::lcs_of_prefixes(sa, 0, sb, 3), 0u);
}

TEST(MonotoneSeq, RejectsBadInput) {
  const std::vector<std::uint64_t> decreasing{3, 1};
  EXPECT_THROW((void)MonotoneSeq::encode(decreasing, 10),
               std::invalid_argument);
  const std::vector<std::uint64_t> above{3, 11};
  EXPECT_THROW((void)MonotoneSeq::encode(above, 10), std::invalid_argument);
}

TEST(Alphabetic, PrefixFreeAndOrdered) {
  std::mt19937_64 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + rng() % 40;
    std::vector<std::uint64_t> w(m);
    for (auto& x : w) x = 1 + rng() % 1000;
    const auto codes = alphabetic_code(w);
    ASSERT_EQ(codes.size(), m);
    std::uint64_t total = 0;
    for (auto x : w) total += x;
    for (std::size_t i = 0; i < m; ++i) {
      // Length bound: ceil(log2(W/w_i)) + 1.
      EXPECT_LE(codes[i].len,
                ceil_log2((total + w[i] - 1) / w[i]) + 1);
      for (std::size_t j = i + 1; j < m; ++j) {
        // Prefix-freeness and order preservation, via MSB-first strings.
        const auto str = [](const Codeword& c) {
          std::string s;
          for (int b = c.len - 1; b >= 0; --b)
            s.push_back(((c.bits >> b) & 1) ? '1' : '0');
          return s;
        };
        const std::string si = str(codes[i]), sj = str(codes[j]);
        EXPECT_NE(si.substr(0, std::min(si.size(), sj.size())),
                  sj.substr(0, std::min(si.size(), sj.size())))
            << "prefix collision " << i << "," << j;
        EXPECT_LT(si, sj) << "order violated";
      }
    }
  }
}

TEST(Alphabetic, SingleSymbol) {
  const std::vector<std::uint64_t> w{7};
  const auto codes = alphabetic_code(w);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0].len, 1);
}

TEST(Alphabetic, RejectsBadInput) {
  EXPECT_THROW((void)alphabetic_code({}), std::invalid_argument);
  const std::vector<std::uint64_t> zero{1, 0, 2};
  EXPECT_THROW((void)alphabetic_code(zero), std::invalid_argument);
}

}  // namespace
