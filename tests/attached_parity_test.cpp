// Attached/raw parity: for every scheme, the attach-once/query-many fast
// path must return exactly what the raw-BitVec path returns, across the
// standard shape extremes; and truncated/corrupt labels must fail loudly
// with DecodeError on either path, never crash or read out of bounds.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bits/bitio.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "core/spanning_oracle.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "tree/graph.hpp"
#include "tree/hpd.hpp"

namespace {

using namespace treelab;
using bits::BitVec;
using tree::NodeId;
using tree::Tree;

std::vector<Tree> parity_trees() {
  std::vector<Tree> out;
  for (std::uint64_t seed = 0; seed < 3; ++seed)
    out.push_back(tree::random_tree(220, seed));
  out.push_back(tree::path(160));
  out.push_back(tree::star(160));
  out.push_back(tree::caterpillar(40, 4));
  return out;
}

/// Random pair stream over [0, n) x [0, n), including the diagonal.
template <typename F>
void for_random_pairs(NodeId n, F&& f) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<NodeId> pick(0, n - 1);
  for (int i = 0; i < 400; ++i) f(pick(rng), pick(rng));
  f(0, 0);  // equal labels
}

template <typename Scheme>
void expect_parity(const Tree& t) {
  const Scheme s(t);
  std::vector<typename Scheme::Attached> att;
  att.reserve(static_cast<std::size_t>(t.size()));
  for (NodeId v = 0; v < t.size(); ++v)
    att.push_back(Scheme::attach(s.label(v)));
  for_random_pairs(t.size(), [&](NodeId u, NodeId v) {
    ASSERT_EQ(Scheme::query(att[u], att[v]),
              Scheme::query(s.label(u), s.label(v)))
        << "u=" << u << " v=" << v << " n=" << t.size();
  });
}

TEST(AttachedParity, Fgnw) {
  for (const Tree& t : parity_trees()) expect_parity<core::FgnwScheme>(t);
}

TEST(AttachedParity, Alstrup) {
  for (const Tree& t : parity_trees()) expect_parity<core::AlstrupScheme>(t);
}

TEST(AttachedParity, Peleg) {
  for (const Tree& t : parity_trees()) expect_parity<core::PelegScheme>(t);
}

TEST(AttachedParity, Approx) {
  for (const double eps : {1.0, 0.25}) {
    for (const auto enc : {core::ApproxScheme::Encoding::kMonotone,
                           core::ApproxScheme::Encoding::kUnary}) {
      for (const Tree& t : parity_trees()) {
        const core::ApproxScheme s(t, eps, enc);
        std::vector<core::ApproxAttachedLabel> att;
        for (NodeId v = 0; v < t.size(); ++v)
          att.push_back(core::ApproxScheme::attach(s.label(v)));
        for_random_pairs(t.size(), [&](NodeId u, NodeId v) {
          ASSERT_EQ(
              core::ApproxScheme::query(eps, att[u], att[v]),
              core::ApproxScheme::query(eps, s.label(u), s.label(v)))
              << "u=" << u << " v=" << v << " eps=" << eps;
        });
      }
    }
  }
}

TEST(AttachedParity, KDistance) {
  for (const std::uint64_t k : {std::uint64_t{4}, std::uint64_t{64}}) {
    for (const Tree& t : parity_trees()) {
      const core::KDistanceScheme s(t, k);
      std::vector<core::KDistanceAttachedLabel> att;
      for (NodeId v = 0; v < t.size(); ++v)
        att.push_back(core::KDistanceScheme::attach(k, s.label(v)));
      for_random_pairs(t.size(), [&](NodeId u, NodeId v) {
        const auto fast = core::KDistanceScheme::query(k, att[u], att[v]);
        const auto raw =
            core::KDistanceScheme::query(k, s.label(u), s.label(v));
        ASSERT_EQ(fast.within, raw.within) << "u=" << u << " v=" << v;
        if (raw.within) {
          ASSERT_EQ(fast.distance, raw.distance);
        }
        const auto lin =
            core::KDistanceScheme::query_linear(k, att[u], att[v]);
        ASSERT_EQ(lin.within, raw.within);
        if (raw.within) {
          ASSERT_EQ(lin.distance, raw.distance);
        }
      });
    }
  }
}

TEST(AttachedParity, Nca) {
  for (const Tree& t : parity_trees()) {
    const tree::HeavyPathDecomposition hpd(t);
    const nca::NcaLabeling nl(hpd);
    std::vector<nca::AttachedNcaLabel> att;
    for (NodeId v = 0; v < t.size(); ++v)
      att.push_back(nca::NcaLabeling::attach(nl.label(v)));
    for_random_pairs(t.size(), [&](NodeId u, NodeId v) {
      const auto fast = nca::NcaLabeling::query(att[u], att[v]);
      const auto raw = nca::NcaLabeling::query(nl.label(u), nl.label(v));
      ASSERT_EQ(fast.rel, raw.rel) << "u=" << u << " v=" << v;
      ASSERT_EQ(fast.lightdepth, raw.lightdepth);
      ASSERT_EQ(fast.u_first, raw.u_first);
      ASSERT_EQ(fast.same_branch_node, raw.same_branch_node);
    });
  }
}

TEST(AttachedParity, OracleAndBatch) {
  const tree::Graph g = tree::Graph::random_connected(250, 400, 13);
  const core::SpanningOracle o(g, 3);
  const std::vector<core::OracleAttachedState> att = o.attach_all();
  ASSERT_EQ(att.size(), static_cast<std::size_t>(g.size()));
  EXPECT_EQ(att[0].trees(), 3u);
  for_random_pairs(g.size(), [&](NodeId u, NodeId v) {
    ASSERT_EQ(core::SpanningOracle::query(att[u], att[v]),
              core::SpanningOracle::query(o.state(u), o.state(v)));
  });
  // Batch: one source node answering a stream against its cached state.
  const auto batch = core::SpanningOracle::query_many(att[7], att);
  ASSERT_EQ(batch.size(), att.size());
  for (NodeId v = 0; v < g.size(); ++v)
    ASSERT_EQ(batch[v], core::SpanningOracle::query(o.state(7), o.state(v)));
  EXPECT_EQ(batch[7], 0u);
}

/// Every strict prefix of a label must either attach cleanly (parse happens
/// to end early) or throw DecodeError — nothing else, and never a crash.
template <typename Attach>
void expect_fails_loudly(const BitVec& label, Attach&& attach) {
  int threw = 0;
  for (std::size_t len = 0; len < label.size();
       len += 1 + len / 7) {  // denser probing near the header
    const BitVec prefix = label.slice(0, len);
    try {
      (void)attach(prefix);
    } catch (const bits::DecodeError&) {
      ++threw;
    }
    // Any other exception type escapes and fails the test.
  }
  EXPECT_GT(threw, 0) << "no truncation ever failed?";
}

TEST(AttachedCorruption, TruncatedLabels) {
  const Tree t = tree::random_tree(300, 42);
  expect_fails_loudly(core::FgnwScheme(t).label(123), [](const BitVec& l) {
    return core::FgnwScheme::attach(l);
  });
  expect_fails_loudly(core::AlstrupScheme(t).label(123), [](const BitVec& l) {
    return core::AlstrupScheme::attach(l);
  });
  expect_fails_loudly(core::PelegScheme(t).label(123), [](const BitVec& l) {
    return core::PelegScheme::attach(l);
  });
  expect_fails_loudly(core::ApproxScheme(t, 0.5).label(123),
                      [](const BitVec& l) {
                        return core::ApproxScheme::attach(l);
                      });
  expect_fails_loudly(core::KDistanceScheme(t, 8).label(123),
                      [](const BitVec& l) {
                        return core::KDistanceScheme::attach(8, l);
                      });
  const tree::HeavyPathDecomposition hpd(t);
  expect_fails_loudly(nca::NcaLabeling(hpd).label(123), [](const BitVec& l) {
    return nca::NcaLabeling::attach(l);
  });
  tree::Graph g(t.size());
  for (NodeId v = 0; v < t.size(); ++v)
    if (t.parent(v) != tree::kNoNode) g.add_edge(v, t.parent(v));
  expect_fails_loudly(core::SpanningOracle(g, 2).state(123),
                      [](const BitVec& l) {
                        return core::SpanningOracle::attach(l);
                      });
}

TEST(AttachedCorruption, EmptyLabelThrows) {
  const BitVec empty;
  EXPECT_THROW((void)core::FgnwScheme::attach(empty), bits::DecodeError);
  EXPECT_THROW((void)core::AlstrupScheme::attach(empty), bits::DecodeError);
  EXPECT_THROW((void)core::PelegScheme::attach(empty), bits::DecodeError);
  EXPECT_THROW((void)core::ApproxScheme::attach(empty), bits::DecodeError);
  EXPECT_THROW((void)core::KDistanceScheme::attach(4, empty),
               bits::DecodeError);
  EXPECT_THROW((void)nca::NcaLabeling::attach(empty), bits::DecodeError);
  EXPECT_THROW((void)core::SpanningOracle::attach(empty), bits::DecodeError);
}

}  // namespace
