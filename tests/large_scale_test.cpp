// Scale stress: half-million-node builds with sampled oracle verification,
// checking that label sizes, build paths and queries hold up well beyond
// the exhaustive-test regime.
#include <gtest/gtest.h>

#include <random>

#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::NodeId;

TEST(LargeScale, FgnwHalfMillion) {
  const auto t = tree::random_tree(500'000, 77);
  const core::FgnwScheme f(t);
  const tree::NcaIndex oracle(t);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    ASSERT_EQ(core::FgnwScheme::query(f.label(u), f.label(v)),
              oracle.distance(u, v));
  }
  // Label size sanity at scale: ~19 light levels, comfortably sub-log^2.
  const double lg = 19.0;
  EXPECT_LE(static_cast<double>(f.stats().max_bits), 2.0 * lg * lg + 200.0);
}

TEST(LargeScale, KDistanceDeepSkewedTree) {
  const auto t = tree::random_windowed_tree(200'000, 6, 3);  // deep + skewed
  const std::uint64_t k = 12;
  const core::KDistanceScheme s(t, k);
  const tree::NcaIndex oracle(t);
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  int within_seen = 0;
  for (int i = 0; i < 4000; ++i) {
    // Mix random pairs with nearby pairs so both outcomes are exercised.
    const NodeId u = pick(rng);
    const NodeId v = i % 2 == 0 ? pick(rng)
                                : std::max<NodeId>(0, u - static_cast<NodeId>(
                                                            rng() % 40));
    const auto got = core::KDistanceScheme::query(k, s.label(u), s.label(v));
    const auto want = oracle.distance(u, v);
    if (want <= k) {
      ASSERT_TRUE(got.within) << u << " " << v;
      ASSERT_EQ(got.distance, want);
      ++within_seen;
    } else {
      ASSERT_FALSE(got.within) << u << " " << v;
    }
  }
  EXPECT_GT(within_seen, 100);  // the workload must exercise the within path
}

TEST(LargeScale, KDistanceOnSubdividedHmTree) {
  // The Section 4.2 reduction instance: an (h,M)-tree subdivided to unit
  // edges, queried with k around the leaf-to-leaf distances.
  const auto t = tree::subdivide(tree::hm_tree(6, 24, 9));
  const tree::NcaIndex oracle(t);
  for (const std::uint64_t k : {20, 100, 288}) {
    const core::KDistanceScheme s(t, k);
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
    for (int i = 0; i < 3000; ++i) {
      const NodeId u = pick(rng), v = pick(rng);
      const auto got = core::KDistanceScheme::query(k, s.label(u), s.label(v));
      const auto want = oracle.distance(u, v);
      if (want <= k) {
        ASSERT_TRUE(got.within) << "k=" << k << " " << u << " " << v;
        ASSERT_EQ(got.distance, want);
      } else {
        ASSERT_FALSE(got.within) << "k=" << k << " " << u << " " << v;
      }
    }
  }
}

}  // namespace
