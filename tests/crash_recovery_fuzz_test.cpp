// Crash-recovery fuzzer — the lockdown for the durability layer.
//
// A producer (IncrementalRelabeler) streams random edits into a
// DeltaJournal while failpoints kill the process-under-simulation at
// randomized points inside append() and checkpoint(): torn writes that
// leave half a frame on disk, failed fsyncs, failed renames, failed
// opens. After every kill the journal is reopened and recovery must land
// on a committed epoch: either the last committed one or — when the
// frame fully reached the file before the kill — the appended one, in
// both cases *bit-identical* to what the from-scratch oracle
// (AlstrupScheme over the committed tree snapshot) says that epoch's
// labels must be. The same loop drives kill-points through
// ForestIndex::apply_delta and asserts the serving side keeps answering
// the old epoch, unchanged, after every failed apply.
//
// A companion test locks the graceful-degradation contract: a tree fed
// corrupt deltas is quarantined (typed errors) while the rest of the
// forest keeps serving, and a clean update repairs it.
//
// Reproducibility: single-threaded and fully seed-driven — any failure
// reruns with --seed N; the op log of a failing run is written to the
// artifact dir for diagnosis.
//
// Flags (also readable from the environment, for ctest-driven runs):
//   --seed N  / TREELAB_CRASH_SEED   RNG seed (default 20260808)
//   --kills N / TREELAB_CRASH_KILLS  kill-point budget (default 1000 —
//                                    the acceptance budget; sanitizer CI
//                                    runs a reduced one)
//   --artifact-dir D / TREELAB_CRASH_ARTIFACT_DIR
//                                    where failing op logs are written
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/delta_journal.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/label_store.hpp"
#include "nca/nca_labeling.hpp"
#include "serve/forest_index.hpp"
#include "tree/generators.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/io_error.hpp"

namespace {

using namespace treelab;
using core::AlstrupScheme;
using core::DeltaJournal;
using core::IncrementalRelabeler;
using core::JournalOptions;
using core::LabelDelta;
using core::LabelStore;
using serve::ForestIndex;
using serve::QueryStatus;
using serve::Request;
using serve::TreeHealth;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;
using util::FailMode;
namespace failpoint = util::failpoint;

constexpr core::AlstrupOptions kStable{nca::CodeWeights::kStablePow2, 1};

struct CrashConfig {
  std::uint64_t seed = 0;  // 0 = default
  int kills = 0;           // 0 = default budget (1000)
  std::string artifact_dir;
};
CrashConfig g_cfg;

int kill_budget() { return g_cfg.kills > 0 ? g_cfg.kills : 1000; }
std::uint64_t run_seed() { return g_cfg.seed != 0 ? g_cfg.seed : 20260808; }

std::string artifact_dir() {
  return g_cfg.artifact_dir.empty() ? testing::TempDir()
                                    : g_cfg.artifact_dir + "/";
}

bool arena_equal(const bits::LabelArena& a, const bits::LabelArena& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.label_bits(i) != b.label_bits(i) || !(a.view(i) == b.view(i)))
      return false;
  return true;
}

/// One fuzz run: producer, journal, committed shadow (arena + tree
/// snapshot + dense map, advanced only when an epoch is known committed),
/// the serving index fed the same deltas, and the op log for artifacts.
class CrashDriver {
 public:
  explicit CrashDriver(std::uint64_t seed)
      : rng_(seed),
        r_(tree::random_tree(96, seed ^ 0x9e3779b97f4a7c15ull)),
        committed_tree_(r_.snapshot()) {
    base_path_ = artifact_dir() + "treelab_crash_fuzz_" +
                 std::to_string(seed) + ".lbl";
    util::remove_file(base_path_);
    util::remove_file(base_path_ + ".tmp");
    util::remove_file(DeltaJournal::journal_path(base_path_));
    util::remove_file(DeltaJournal::journal_path(base_path_) + ".tmp");
    opt_.checkpoint_records = 8;  // fold often: the crash windows of
                                  // checkpoint() get fuzzed too
    opt_.sync = true;
    journal_.emplace(DeltaJournal::create(base_path_, r_.to_loaded(), opt_));
    // Structural mirror for picking valid edits.
    const std::size_t n = r_.size();
    parent_.resize(n);
    alive_.assign(n, 1);
    kids_.assign(n, 0);
    const Tree snap = r_.snapshot();
    for (NodeId v = 0; v < snap.size(); ++v) {
      parent_[static_cast<std::size_t>(v)] = snap.parent(v);
      if (snap.parent(v) != kNoNode)
        ++kids_[static_cast<std::size_t>(snap.parent(v))];
    }
    live_ = n;
    commit_shadow();
    index_.emplace(serve::ForestOptions{});
    (void)index_->add(journal_->to_loaded());
    index_chain_ = journal_->chain();
  }

  ~CrashDriver() {
    failpoint::disarm_all();
    if (!failed_) {
      util::remove_file(base_path_);
      util::remove_file(base_path_ + ".tmp");
      util::remove_file(DeltaJournal::journal_path(base_path_));
      util::remove_file(DeltaJournal::journal_path(base_path_) + ".tmp");
    }
  }

  /// Runs until `kills` kill-points have fired (or a check failed).
  void run(int kills) {
    const long max_iters = static_cast<long>(kills) * 50;
    long iter = 0;
    while (kills_ < kills && !failed_) {
      if (++iter > max_iters) {
        fail("kill budget not reached in " + std::to_string(max_iters) +
             " iterations (" + std::to_string(kills_) + " kills)");
        return;
      }
      step(iter);
    }
  }

  [[nodiscard]] int kills() const noexcept { return kills_; }
  [[nodiscard]] int journal_kills() const noexcept { return journal_kills_; }
  [[nodiscard]] int checkpoint_kills() const noexcept {
    return checkpoint_kills_;
  }
  [[nodiscard]] int apply_kills() const noexcept { return apply_kills_; }
  [[nodiscard]] int commits() const noexcept { return commits_; }

 private:
  // --- random edits over the structural mirror ---------------------------

  NodeId pick_live() {
    for (;;) {
      const auto v = static_cast<NodeId>(rng_() % parent_.size());
      if (alive_[static_cast<std::size_t>(v)]) return v;
    }
  }

  bool try_delete() {
    for (int attempt = 0; attempt < 24; ++attempt) {
      const NodeId v = pick_live();
      const auto s = static_cast<std::size_t>(v);
      if (v != 0 && kids_[s] == 0) {
        r_.delete_leaf(v);
        alive_[s] = 0;
        --kids_[static_cast<std::size_t>(parent_[s])];
        --live_;
        log("D " + std::to_string(v));
        return true;
      }
    }
    return false;
  }

  void do_insert() {
    const NodeId p = pick_live();
    const auto w = static_cast<std::uint32_t>(1 + rng_() % 8);
    (void)r_.insert_leaf(p, w);
    parent_.push_back(p);
    alive_.push_back(1);
    kids_.push_back(0);
    ++kids_[static_cast<std::size_t>(p)];
    ++live_;
    log("I " + std::to_string(p) + " " + std::to_string(w));
  }

  void do_compact() {
    const std::vector<NodeId> map = r_.compact();
    std::vector<NodeId> parent(r_.size(), kNoNode);
    std::vector<std::uint8_t> alive(r_.size(), 1);
    std::vector<int> kids(r_.size(), 0);
    for (std::size_t old = 0; old < map.size(); ++old) {
      if (map[old] == kNoNode) continue;
      const auto ni = static_cast<std::size_t>(map[old]);
      const NodeId op = parent_[old];
      parent[ni] = op == kNoNode ? kNoNode : map[static_cast<std::size_t>(op)];
      if (parent[ni] != kNoNode) ++kids[static_cast<std::size_t>(parent[ni])];
    }
    parent_ = std::move(parent);
    alive_ = std::move(alive);
    kids_ = std::move(kids);
    log("C");
  }

  void random_edits() {
    const int ne = 1 + static_cast<int>(rng_() % 3);
    for (int e = 0; e < ne; ++e) {
      const std::uint64_t roll = rng_() % 100;
      // Keep the tree bounded so late-run oracle rebuilds stay cheap.
      const std::uint64_t p_insert = live_ < 400 ? 55 : 20;
      if (roll < p_insert) {
        do_insert();
      } else if (roll < p_insert + 30) {
        if (!try_delete()) do_insert();
      } else if (roll < p_insert + 40) {
        const NodeId v = pick_live();
        if (v != 0) {
          const auto w = static_cast<std::uint32_t>(1 + rng_() % 8);
          r_.set_edge_weight(v, w);
          log("W " + std::to_string(v) + " " + std::to_string(w));
        }
      } else if (roll < p_insert + 43) {
        do_compact();
      } else {
        do_insert();
      }
    }
  }

  // --- committed-epoch bookkeeping ---------------------------------------

  void commit_shadow() {
    committed_ = r_.labels();
    committed_tree_ = r_.snapshot();
    committed_map_ = r_.dense_map();
    ++commits_;
  }

  /// The acceptance check: the committed arena (where recovery landed)
  /// must be bit-identical to a from-scratch rebuild over the committed
  /// tree snapshot, through the dense id map.
  bool oracle_check(const bits::LabelArena& got) {
    const AlstrupScheme fresh(committed_tree_, kStable);
    if (got.size() != committed_map_.size())
      return fail("oracle: arena size != dense map size");
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (committed_map_[i] == kNoNode) {
        if (got.label_bits(i) != 0)
          return fail("oracle: tombstone id " + std::to_string(i) +
                      " has a nonempty label");
        continue;
      }
      const auto j = static_cast<std::size_t>(committed_map_[i]);
      if (got.label_bits(i) != fresh.labels().label_bits(j) ||
          !(got.view(i) == fresh.labels()[j]))
        return fail("oracle: label mismatch at id " + std::to_string(i));
    }
    return true;
  }

  // --- the serving side ---------------------------------------------------

  /// A request known to answer kOk against the index, with its answer.
  struct Spot {
    Request req;
    serve::Dist dist;
    bool valid = false;
  };

  Spot find_spot() {
    const auto bound = static_cast<NodeId>(index_->id_bound(0));
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Request q{0, static_cast<NodeId>(rng_() % bound),
                      static_cast<NodeId>(rng_() % bound)};
      const auto res = index_->query_batch_checked({&q, 1});
      if (res[0].status == QueryStatus::kOk) return {q, res[0].dist, true};
    }
    return {};
  }

  void ship_to_index(const LabelDelta& d) {
    LabelDelta di = d;
    if (di.base_chain != index_chain_) LabelStore::rechain(di, index_chain_);
    if (rng_() % 4 == 0) {
      // Kill-point inside ForestIndex::apply_delta: the swap must not
      // happen — the index keeps answering the old epoch, unchanged.
      const Spot spot = find_spot();
      const std::uint64_t epoch_before = index_->update_epoch(0);
      const bool alloc = rng_() % 2 == 0;
      failpoint::arm("forest.apply_delta",
                     alloc ? FailMode::kAllocFail : FailMode::kThrow, 0, 1);
      bool threw = false;
      try {
        (void)index_->apply_delta(0, di);
      } catch (const std::bad_alloc&) {
        threw = true;
      } catch (const std::runtime_error&) {
        threw = true;
      }
      failpoint::disarm_all();
      if (!threw) {
        fail("forest.apply_delta failpoint did not fire");
        return;
      }
      ++kills_;
      ++apply_kills_;
      log("kill forest.apply_delta " + std::string(alloc ? "alloc" : "throw"));
      if (index_->update_epoch(0) != epoch_before) {
        fail("failed apply_delta advanced the epoch");
        return;
      }
      if (spot.valid) {
        const auto res = index_->query_batch_checked({&spot.req, 1});
        if (res[0].status != QueryStatus::kOk || !(res[0].dist == spot.dist)) {
          fail("failed apply_delta changed a served answer");
          return;
        }
      }
      if (index_->health(0) == TreeHealth::kQuarantined) {
        fail("single transient apply failure quarantined the tree");
        return;
      }
    }
    (void)index_->apply_delta(0, di);
    index_chain_ = di.new_chain;
  }

  // --- one fuzz iteration -------------------------------------------------

  void step(long iter) {
    const bool do_ckpt = rng_() % 5 == 0;
    LabelDelta d0;
    LabelDelta d;
    if (!do_ckpt) {
      random_edits();
      d0 = r_.make_delta();
      d = d0;
      if (d.base_chain != journal_->chain())
        LabelStore::rechain(d, journal_->chain());
    }

    // Arm a randomized kill-point for most iterations (the rest commit
    // cleanly, moving the committed epoch forward).
    const bool armed = rng_() % 10 < 7;
    std::string site;
    if (armed) {
      static const char* kAppendSites[] = {"fs.write", "fs.fsync",
                                           "fs.open_append"};
      static const char* kCkptSites[] = {"fs.write", "fs.fsync", "fs.rename",
                                         "fs.open_write"};
      site = do_ckpt ? kCkptSites[rng_() % 4] : kAppendSites[rng_() % 3];
      const std::uint64_t roll = rng_() % 4;
      const FailMode mode = roll == 0   ? FailMode::kError
                            : roll == 1 ? FailMode::kShortWrite
                                        : FailMode::kTornWrite;
      // Sometimes tear *after* the full frame (arg huge): the bytes all
      // reached disk, only the process died — recovery must then land on
      // the NEW epoch.
      const std::uint64_t arg =
          rng_() % 4 == 0 ? (std::uint64_t{1} << 30) : rng_() % 96;
      const std::uint64_t skip = rng_() % 3;
      failpoint::arm(site, mode, skip, 1, arg);
    }
    const std::uint64_t trips_before = armed ? failpoint::trips(site) : 0;

    bool ok = false;
    try {
      if (do_ckpt)
        journal_->checkpoint();
      else
        journal_->append(d);
      ok = true;
    } catch (const util::FailpointAbort&) {
    } catch (const util::IoError&) {
    } catch (const std::exception& e) {
      failpoint::disarm_all();
      fail(std::string("unexpected exception from ") +
           (do_ckpt ? "checkpoint" : "append") + ": " + e.what());
      return;
    }
    const bool tripped =
        armed && failpoint::trips(site) > trips_before;
    failpoint::disarm_all();

    if (ok) {
      if (tripped) {
        fail("operation succeeded although the failpoint tripped");
        return;
      }
      if (!do_ckpt) {
        r_.advance_delta(d0);
        commit_shadow();
        ship_to_index(d);
      }
      return;
    }

    // The operation died. That must be our kill, and reopening must
    // recover a committed epoch.
    if (!tripped) {
      fail("operation failed without the failpoint tripping");
      return;
    }
    ++kills_;
    if (do_ckpt)
      ++checkpoint_kills_;
    else
      ++journal_kills_;
    log("kill iter=" + std::to_string(iter) +
        (do_ckpt ? " checkpoint " : " append ") + site);

    try {
      journal_.emplace(DeltaJournal::open(base_path_, opt_));
    } catch (const std::exception& e) {
      fail(std::string("reopen after kill failed: ") + e.what());
      return;
    }

    if (!do_ckpt && arena_equal(journal_->labels(), r_.labels())) {
      // The frame (and possibly a fold) fully reached disk before the
      // kill: the append IS committed.
      r_.advance_delta(d0);
      commit_shadow();
      if (!oracle_check(journal_->labels())) return;
      ship_to_index(d);
      return;
    }
    // Otherwise recovery must land exactly on the last committed epoch,
    // bit-identical to the from-scratch oracle.
    if (!arena_equal(journal_->labels(), committed_)) {
      fail("recovery landed on neither the committed nor the appended "
           "epoch");
      return;
    }
    (void)oracle_check(journal_->labels());
  }

  // --- failure reporting --------------------------------------------------

  bool fail(const std::string& why) {
    failed_ = true;
    const std::string artifact =
        artifact_dir() + "crash_fuzz_" + std::to_string(run_seed()) + ".log";
    std::ofstream out(artifact);
    for (const std::string& line : log_) out << line << "\n";
    out << "FAIL: " << why << "\n";
    ADD_FAILURE() << why << "\n  repro: crash_recovery_fuzz_test --seed "
                  << run_seed() << " --kills " << kill_budget()
                  << "\n  op log: " << artifact;
    return false;
  }

  void log(std::string line) { log_.push_back(std::move(line)); }

  std::mt19937_64 rng_;
  IncrementalRelabeler r_;
  std::string base_path_;
  JournalOptions opt_;
  std::optional<DeltaJournal> journal_;
  // Committed shadow: advanced only when an epoch is provably on disk.
  bits::LabelArena committed_;
  Tree committed_tree_;
  std::vector<NodeId> committed_map_;
  // Structural mirror.
  std::vector<NodeId> parent_;
  std::vector<std::uint8_t> alive_;
  std::vector<int> kids_;
  std::size_t live_ = 0;
  // Serving side.
  std::optional<ForestIndex> index_;
  std::uint64_t index_chain_ = 0;
  // Accounting.
  int kills_ = 0;
  int journal_kills_ = 0;
  int checkpoint_kills_ = 0;
  int apply_kills_ = 0;
  int commits_ = 0;
  bool failed_ = false;
  std::vector<std::string> log_;
};

TEST(CrashRecoveryFuzz, KillPointsRecoverToCommittedEpoch) {
  CrashDriver d(run_seed());
  d.run(kill_budget());
  if (::testing::Test::HasFailure()) return;
  EXPECT_GE(d.kills(), kill_budget());
  // The budget must genuinely cover all three operations.
  EXPECT_GT(d.journal_kills(), 0);
  EXPECT_GT(d.checkpoint_kills(), 0);
  EXPECT_GT(d.apply_kills(), 0);
  EXPECT_GT(d.commits(), 1);
  std::cout << "[  kills   ] " << d.kills() << " (append "
            << d.journal_kills() << ", checkpoint " << d.checkpoint_kills()
            << ", apply " << d.apply_kills() << "), commits " << d.commits()
            << "\n";
}

// Degradation contract: corrupt deltas quarantine one tree with typed
// errors; the rest of the forest keeps serving; a clean update repairs.
TEST(CrashRecoveryFuzz, QuarantinedTreeDoesNotTakeDownTheForest) {
  IncrementalRelabeler ra(tree::random_tree(60, 1));
  IncrementalRelabeler rb(tree::random_tree(60, 2));
  serve::ForestOptions fopt;
  fopt.quarantine_after = 3;
  ForestIndex index(fopt);
  const serve::TreeId ta = index.add(ra.to_loaded());
  const serve::TreeId tb = index.add(rb.to_loaded());

  // A delta whose chain is wrong is an integrity failure every time.
  for (int i = 0; i < 3; ++i) (void)ra.insert_leaf(0);
  LabelDelta bad = ra.make_delta();
  bad.base_chain ^= 0x1234;
  bad.new_chain = LabelStore::chain_hash(bad.base_chain, bad);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)index.apply_delta(ta, bad), std::runtime_error);
    EXPECT_EQ(index.health(ta), i < 2 ? TreeHealth::kLive
                                      : TreeHealth::kQuarantined);
  }

  // Typed errors from both query APIs; tb still answers.
  EXPECT_THROW((void)index.query(Request{ta, 0, 1}), serve::QuarantinedError);
  const std::vector<Request> reqs{{ta, 0, 1}, {tb, 0, 1}, {99, 0, 1},
                                  {tb, 0, 5999}};
  std::vector<serve::QueryResult> res = index.query_batch_checked(reqs);
  EXPECT_EQ(res[0].status, QueryStatus::kQuarantined);
  EXPECT_EQ(res[1].status, QueryStatus::kOk);
  EXPECT_EQ(res[2].status, QueryStatus::kBadTree);
  EXPECT_EQ(res[3].status, QueryStatus::kBadNode);
  EXPECT_EQ(res[1].dist, index.query(Request{tb, 0, 1}));
  const auto st = index.cache_stats();
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_GE(st.integrity_failures, 3u);
  EXPECT_GE(st.quarantine_events, 1u);

  // Repair: a clean full update restores live serving.
  (void)index.update(ta, ra.to_loaded());
  EXPECT_EQ(index.health(ta), TreeHealth::kLive);
  EXPECT_EQ(index.query_batch_checked({reqs.data(), 1})[0].status,
            QueryStatus::kOk);
}

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  const auto from_env = [](const char* name) -> std::string {
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  if (const std::string s = from_env("TREELAB_CRASH_SEED"); !s.empty())
    g_cfg.seed = std::strtoull(s.c_str(), nullptr, 10);
  if (const std::string s = from_env("TREELAB_CRASH_KILLS"); !s.empty())
    g_cfg.kills = std::atoi(s.c_str());
  g_cfg.artifact_dir = from_env("TREELAB_CRASH_ARTIFACT_DIR");
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed")
      g_cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--kills")
      g_cfg.kills = std::atoi(argv[++i]);
    else if (a == "--artifact-dir")
      g_cfg.artifact_dir = argv[++i];
  }
  return RUN_ALL_TESTS();
}
