// The fault-injection registry itself, plus the fs primitives it steers:
// arming semantics (skip/count/arg, env parsing, trip accounting) and the
// crash discipline of atomic_write_file/append_file — in particular that
// a torn write tears the *temp* file, never the atomic-write target.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "util/fs.hpp"
#include "util/io_error.hpp"

namespace treelab {
namespace {

using util::FailMode;
using util::FailpointAbort;
using util::IoError;
namespace failpoint = util::failpoint;

// Every test leaves the registry clean, whatever path it exits by.
class FailpointTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(failpoint::check("never.armed").has_value());
}

TEST_F(FailpointTest, ArmFiresWithModeAndArg) {
  failpoint::arm("t.basic", FailMode::kShortRead, 0, -1, 42);
  const auto hit = failpoint::check("t.basic");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->mode, FailMode::kShortRead);
  EXPECT_EQ(hit->arg, 42u);
  failpoint::disarm("t.basic");
  EXPECT_FALSE(failpoint::check("t.basic").has_value());
}

TEST_F(FailpointTest, SkipAndCountProgress) {
  // skip=2, count=2: pass, pass, fire, fire, then exhausted forever.
  failpoint::arm("t.sc", FailMode::kError, 2, 2);
  EXPECT_FALSE(failpoint::check("t.sc").has_value());
  EXPECT_FALSE(failpoint::check("t.sc").has_value());
  EXPECT_TRUE(failpoint::check("t.sc").has_value());
  EXPECT_TRUE(failpoint::check("t.sc").has_value());
  EXPECT_FALSE(failpoint::check("t.sc").has_value());
  EXPECT_FALSE(failpoint::check("t.sc").has_value());
}

TEST_F(FailpointTest, TripsAccumulateAcrossRearm) {
  const std::uint64_t before = failpoint::trips("t.trips");
  failpoint::arm("t.trips", FailMode::kThrow, 0, 1);
  (void)failpoint::check("t.trips");
  failpoint::disarm("t.trips");
  failpoint::arm("t.trips", FailMode::kThrow, 0, 1);
  (void)failpoint::check("t.trips");
  EXPECT_EQ(failpoint::trips("t.trips"), before + 2);
}

TEST_F(FailpointTest, ParseSpecArmsClauses) {
  ASSERT_TRUE(failpoint::parse_spec("t.env1=torn-write:1:3:77,t.env2=error"));
  EXPECT_FALSE(failpoint::check("t.env1").has_value());  // skip 1
  const auto hit = failpoint::check("t.env1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->mode, FailMode::kTornWrite);
  EXPECT_EQ(hit->arg, 77u);
  ASSERT_TRUE(failpoint::check("t.env2").has_value());
}

TEST_F(FailpointTest, ParseSpecRejectsGarbageClauses) {
  EXPECT_FALSE(failpoint::parse_spec("t.bad=no-such-mode"));
  EXPECT_FALSE(failpoint::check("t.bad").has_value());
  EXPECT_FALSE(failpoint::parse_spec("=error"));
  EXPECT_FALSE(failpoint::parse_spec("t.bad2=error:x"));
  // A good clause beside a bad one still arms.
  EXPECT_FALSE(failpoint::parse_spec("t.bad3=wat,t.good=throw"));
  EXPECT_TRUE(failpoint::check("t.good").has_value());
}

TEST_F(FailpointTest, RaiseMapsModesToExceptionTypes) {
  EXPECT_THROW(
      failpoint::raise({FailMode::kError, 0}, "t.r", "some/file"),
      IoError);
  EXPECT_THROW(failpoint::raise({FailMode::kThrow, 0}, "t.r", "f"),
               std::runtime_error);
  EXPECT_THROW(failpoint::raise({FailMode::kAllocFail, 0}, "t.r", "f"),
               std::bad_alloc);
  EXPECT_THROW(failpoint::raise({FailMode::kTornWrite, 0}, "t.r", "f"),
               FailpointAbort);
}

TEST_F(FailpointTest, IoErrorCarriesPathAndErrno) {
  try {
    (void)util::read_file(testing::TempDir() + "treelab_no_such_file");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(e.path().find("treelab_no_such_file"), std::string::npos);
    EXPECT_EQ(e.error_code(), ENOENT);
    EXPECT_NE(std::string(e.what()).find(e.path()), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos);
  }
}

TEST_F(FailpointTest, ShortReadTruncatesReadFile) {
  const std::string path = testing::TempDir() + "treelab_fp_shortread.bin";
  util::atomic_write_file(path, "0123456789");
  failpoint::arm("fs.read", FailMode::kShortRead, 0, 1, 4);
  EXPECT_EQ(util::read_file(path), "0123");
  EXPECT_EQ(util::read_file(path), "0123456789");  // count exhausted
  util::remove_file(path);
}

TEST_F(FailpointTest, TornWriteTearsTempNotTarget) {
  const std::string path = testing::TempDir() + "treelab_fp_torn.bin";
  util::atomic_write_file(path, "OLD-CONTENT");
  // Tear the overwrite after 3 bytes: the simulated crash must leave the
  // target byte-identical — only the temp file may hold the torn prefix.
  failpoint::arm("fs.write", FailMode::kTornWrite, 0, 1, 3);
  EXPECT_THROW(util::atomic_write_file(path, "NEW-CONTENT"), FailpointAbort);
  EXPECT_EQ(util::read_file(path), "OLD-CONTENT");
  EXPECT_EQ(util::read_file(path + ".tmp"), "NEW");
  // And the write path works again once the failpoint is gone.
  util::atomic_write_file(path, "NEW-CONTENT");
  EXPECT_EQ(util::read_file(path), "NEW-CONTENT");
  util::remove_file(path);
  util::remove_file(path + ".tmp");
}

TEST_F(FailpointTest, ShortWriteReportsErrorAfterPrefix) {
  const std::string path = testing::TempDir() + "treelab_fp_shortw.bin";
  util::atomic_write_file(path, "");
  failpoint::arm("fs.write", FailMode::kShortWrite, 0, 1, 5);
  EXPECT_THROW(util::append_file(path, "0123456789", true), IoError);
  EXPECT_EQ(util::read_file(path), "01234");  // the prefix really landed
  util::remove_file(path);
}

TEST_F(FailpointTest, TornAppendLeavesPrefixForRecovery) {
  const std::string path = testing::TempDir() + "treelab_fp_tornapp.bin";
  util::atomic_write_file(path, "HDR|");
  failpoint::arm("fs.write", FailMode::kTornWrite, 0, 1, 2);
  EXPECT_THROW(util::append_file(path, "RECORD", true), FailpointAbort);
  EXPECT_EQ(util::read_file(path), "HDR|RE");
  util::truncate_file(path, 4);  // what journal recovery does
  EXPECT_EQ(util::read_file(path), "HDR|");
  util::remove_file(path);
}

TEST_F(FailpointTest, FsyncAndRenameFailpointsFire) {
  const std::string path = testing::TempDir() + "treelab_fp_fsync.bin";
  failpoint::arm("fs.fsync", FailMode::kError, 0, 1);
  EXPECT_THROW(util::atomic_write_file(path, "x"), IoError);
  failpoint::disarm_all();
  failpoint::arm("fs.rename", FailMode::kTornWrite, 0, 1);
  EXPECT_THROW(util::atomic_write_file(path, "x"), FailpointAbort);
  failpoint::disarm_all();
  util::atomic_write_file(path, "x");
  EXPECT_EQ(util::read_file(path), "x");
  util::remove_file(path);
  util::remove_file(path + ".tmp");
}

}  // namespace
}  // namespace treelab
