// KDistanceScheme (Section 4) against the brute-force oracle: for every
// node pair, the scheme must report d(u,v) exactly when d(u,v) <= k and
// "exceeds" otherwise — over shapes, sizes, seeds and the full range of k
// regimes (k < log n and k >= log n).
#include <gtest/gtest.h>

#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;

void expect_kdist_exact(const tree::Tree& t, std::uint64_t k) {
  const core::KDistanceScheme s(t, k);
  const tree::NcaIndex oracle(t);
  for (tree::NodeId u = 0; u < t.size(); ++u)
    for (tree::NodeId v = 0; v < t.size(); ++v) {
      const auto got = core::KDistanceScheme::query(k, s.label(u), s.label(v));
      const std::uint64_t want = oracle.distance(u, v);
      if (want <= k) {
        ASSERT_TRUE(got.within) << "u=" << u << " v=" << v << " k=" << k
                                << " d=" << want << " n=" << t.size();
        ASSERT_EQ(got.distance, want)
            << "u=" << u << " v=" << v << " k=" << k << " n=" << t.size();
      } else {
        ASSERT_FALSE(got.within) << "u=" << u << " v=" << v << " k=" << k
                                 << " d=" << want << " n=" << t.size();
      }
    }
}

TEST(KDistance, RandomSmallK) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    for (std::uint64_t k : {1, 2, 3, 5})
      expect_kdist_exact(tree::random_tree(70, seed), k);
}

TEST(KDistance, RandomLargeK) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    for (std::uint64_t k : {8, 16, 40, 200})
      expect_kdist_exact(tree::random_tree(70, seed), k);
}

TEST(KDistance, Shapes) {
  for (const auto& shape : tree::standard_shapes())
    for (std::uint64_t k : {1, 2, 4, 9, 64})
      expect_kdist_exact(shape.make(64, 3), k);
}

TEST(KDistance, PathBoundaries) {
  // Distances exactly at k and k+1 along a single heavy path.
  for (std::uint64_t k : {1, 2, 5, 31, 32})
    expect_kdist_exact(tree::path(40), k);
}

TEST(KDistance, DeepSpider) {
  expect_kdist_exact(tree::spider(6, 12), 7);
  expect_kdist_exact(tree::spider(6, 12), 24);
}

TEST(KDistance, FastNcsaLocatorMatchesLinearReference) {
  // Differential test of the Section 4.4 machinery (longest common suffix
  // of height sequences + MSB + successor) against the linear scan, over
  // every pair — the two must agree bit-for-bit on within/distance.
  for (const auto& shape : tree::standard_shapes()) {
    const tree::Tree t = shape.make(72, 19);
    for (std::uint64_t k : {1, 3, 7, 20, 200}) {
      const core::KDistanceScheme s(t, k);
      for (tree::NodeId u = 0; u < t.size(); ++u)
        for (tree::NodeId v = 0; v < t.size(); ++v) {
          const auto fast =
              core::KDistanceScheme::query(k, s.label(u), s.label(v));
          const auto ref =
              core::KDistanceScheme::query_linear(k, s.label(u), s.label(v));
          ASSERT_EQ(fast.within, ref.within)
              << shape.name << " k=" << k << " u=" << u << " v=" << v;
          if (fast.within) {
            ASSERT_EQ(fast.distance, ref.distance)
                << shape.name << " k=" << k << " u=" << u << " v=" << v;
          }
        }
    }
  }
}

TEST(KDistance, RejectsWeighted) {
  EXPECT_THROW(core::KDistanceScheme(tree::hm_tree(2, 4, 1), 3),
               std::invalid_argument);
  EXPECT_THROW(core::KDistanceScheme(tree::path(5), 0), std::invalid_argument);
}

}  // namespace
