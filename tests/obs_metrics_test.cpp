// Locks down the observability layer: histogram bucket math (exact range,
// octave sub-buckets, overflow), percentile/merge semantics, registry
// accessor stability, callback latest-wins + RAII removal, the text
// exposition format, and — under TSan in CI — concurrent record() against
// snapshot().
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace treelab::obs {
namespace {

TEST(Histogram, ExactBucketsBelowSixteen) {
  for (std::uint64_t v = 0; v < 16; ++v)
    EXPECT_EQ(Histogram::bucket_of(v), static_cast<int>(v)) << v;
  EXPECT_EQ(Histogram::bucket_of(16), 16);  // first octave bucket
}

TEST(Histogram, BucketFloorIsExactInverse) {
  // Every bucket's floor must map back to that bucket, and floors must be
  // strictly increasing — together these pin the whole layout.
  std::uint64_t prev = 0;
  for (int b = 0; b < Histogram::kBucketCount; ++b) {
    const std::uint64_t floor = Histogram::bucket_floor(b);
    EXPECT_EQ(Histogram::bucket_of(floor), b) << "bucket " << b;
    if (b > 0) {
      EXPECT_GT(floor, prev) << "bucket " << b;
    }
    prev = floor;
  }
}

TEST(Histogram, BucketBoundariesAreTight) {
  // One below the next bucket's floor still lands in this bucket.
  for (int b = 0; b + 1 < Histogram::kBucketCount; ++b) {
    const std::uint64_t next = Histogram::bucket_floor(b + 1);
    EXPECT_EQ(Histogram::bucket_of(next - 1), b) << "bucket " << b;
  }
}

TEST(Histogram, OverflowBucket) {
  const int last = Histogram::kBucketCount - 1;
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 44), last);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), last);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 44) - 1), last - 1);
}

TEST(Histogram, RecordAndSnapshot) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(1'000'000);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.sum, 1'000'010u);
  EXPECT_EQ(s.max, 1'000'000u);
  EXPECT_EQ(s.buckets[5], 2u);
}

TEST(Histogram, PercentileWalksCumulativeCounts) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(0.50), 10u);
  EXPECT_EQ(s.percentile(0.90), 10u);
  // p99 falls in the 1000s; the answer is that bucket's floor.
  const std::uint64_t p99 = s.percentile(0.99);
  EXPECT_LE(p99, 1000u);
  EXPECT_GT(p99, 500u);
}

TEST(Histogram, PercentileClampsToMaxAndHandlesEmpty) {
  Histogram h;
  EXPECT_EQ(h.snapshot().percentile(0.99), 0u);
  h.record(7'000);
  // A single sample: every quantile is that sample's bucket floor (within
  // the <= 25% bucket width), never above max, never an overflow sentinel.
  const Histogram::Snapshot s = h.snapshot();
  const std::uint64_t p99 = s.percentile(0.99);
  EXPECT_LE(p99, s.max);
  EXPECT_GE(p99, s.max - s.max / 4);
  // Overflow samples report the overflow floor, still bounded by max.
  Histogram o;
  o.record((std::uint64_t{1} << 44) + 123);
  EXPECT_EQ(o.snapshot().percentile(0.99), std::uint64_t{1} << 44);
  EXPECT_LE(o.snapshot().percentile(0.99), o.snapshot().max);
}

TEST(Histogram, MergeAddsCountsAndKeepsMax) {
  Histogram a, b;
  a.record(4);
  a.record(100);
  b.record(4);
  b.record(50'000);
  Histogram::Snapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count(), 4u);
  EXPECT_EQ(sa.sum, 4u + 100u + 4u + 50'000u);
  EXPECT_EQ(sa.max, 50'000u);
  EXPECT_EQ(sa.buckets[4], 2u);
}

TEST(CounterGauge, Basics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12u);
}

TEST(Registry, AccessorsReturnStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("a.counter");
  Counter& c2 = reg.counter("a.counter");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  // Interleaved registrations must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) reg.counter("filler." + std::to_string(i));
  EXPECT_EQ(reg.counter("a.counter").value(), 3u);
  EXPECT_EQ(&reg.gauge("a.gauge"), &reg.gauge("a.gauge"));
  EXPECT_EQ(&reg.histogram("a.hist"), &reg.histogram("a.hist"));
}

std::uint64_t sample_value(const std::vector<Sample>& samples,
                           const std::string& name) {
  for (const Sample& s : samples)
    if (s.name == name) return s.value;
  ADD_FAILURE() << "no sample named " << name;
  return 0;
}

bool has_sample(const std::vector<Sample>& samples, const std::string& name) {
  return std::any_of(samples.begin(), samples.end(),
                     [&](const Sample& s) { return s.name == name; });
}

TEST(Registry, SnapshotFlattensHistograms) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  h.record(10);
  h.record(30);
  const auto samples = reg.snapshot();
  EXPECT_EQ(sample_value(samples, "lat_count"), 2u);
  EXPECT_EQ(sample_value(samples, "lat_sum"), 40u);
  EXPECT_EQ(sample_value(samples, "lat_max"), 30u);
  EXPECT_TRUE(has_sample(samples, "lat_p50"));
  EXPECT_TRUE(has_sample(samples, "lat_p90"));
  EXPECT_TRUE(has_sample(samples, "lat_p99"));
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry reg;
  reg.counter("zzz");
  reg.counter("aaa");
  reg.gauge("mmm");
  const auto samples = reg.snapshot();
  ASSERT_GE(samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const Sample& a, const Sample& b) { return a.name < b.name; }));
}

TEST(Registry, CallbackLatestWinsAndGuardRemoves) {
  Registry reg;
  CallbackGuard g1 = reg.set_callback("cb", [] { return std::uint64_t{1}; });
  EXPECT_EQ(sample_value(reg.snapshot(), "cb"), 1u);
  {
    CallbackGuard g2 = reg.set_callback("cb", [] { return std::uint64_t{2}; });
    // Two live registrants: the later one wins the name.
    EXPECT_EQ(sample_value(reg.snapshot(), "cb"), 2u);
  }
  // g2 died; g1 is the live registration again.
  EXPECT_EQ(sample_value(reg.snapshot(), "cb"), 1u);
  g1.release();
  EXPECT_FALSE(has_sample(reg.snapshot(), "cb"));
}

TEST(Registry, GuardMoveTransfersOwnership) {
  Registry reg;
  CallbackGuard g = reg.set_callback("m", [] { return std::uint64_t{7}; });
  CallbackGuard moved = std::move(g);
  g.release();  // must be a no-op on the moved-from guard
  EXPECT_EQ(sample_value(reg.snapshot(), "m"), 7u);
  moved.release();
  EXPECT_FALSE(has_sample(reg.snapshot(), "m"));
}

TEST(Registry, RenderTextFormat) {
  Registry reg;
  reg.counter("beta").add(2);
  reg.gauge("alpha").set(1);
  const std::string text = reg.render_text();
  // Sorted `name value\n` lines.
  EXPECT_EQ(text, "alpha 1\nbeta 2\n");
}

TEST(Registry, GlobalPreRegistersUtilMetrics) {
  const auto samples = Registry::global().snapshot();
  EXPECT_TRUE(has_sample(samples, "util.thread_env_rejections"));
  EXPECT_TRUE(has_sample(samples, "util.failpoint.trips"));
  EXPECT_EQ(sample_value(samples, "util.thread_env_rejections"),
            util::thread_env_rejections());
}

TEST(Registry, CompiledIn) {
  // The default build must carry live metrics — the compiled-out path is
  // exercised by CI's -DTREELAB_OBS=OFF overhead baseline, not here.
  EXPECT_TRUE(kEnabled);
  Counter c;
  c.add();
  EXPECT_EQ(c.value(), 1u);
}

// The TSan CI job runs this suite: concurrent recorders against a
// snapshotter must be data-race-free, and the final tallies exact.
TEST(Concurrency, RecordersVsSnapshotters) {
  Registry reg;
  Histogram& h = reg.histogram("hot");
  Counter& c = reg.counter("ops");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = h.snapshot();
      // Values are all >= 1, so sum >= count up to the handful of records
      // in flight between the two non-atomic field reads.
      EXPECT_LE(s.count(), s.sum + kThreads);
      (void)reg.snapshot();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(1 + ((t + i) & 15)));
        c.add();
      }
    });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Concurrency, CallbackRegistrationChurnVsSnapshot) {
  Registry reg;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) (void)reg.snapshot();
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t)
    churners.emplace_back([&, t] {
      for (int i = 0; i < 2'000; ++i) {
        CallbackGuard g = reg.set_callback(
            "churn." + std::to_string(t),
            [v = static_cast<std::uint64_t>(i)] { return v; });
        // Guard dies immediately: removal must be safe against snapshots.
      }
    });
  for (auto& c : churners) c.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  for (int t = 0; t < 3; ++t)
    EXPECT_FALSE(has_sample(reg.snapshot(), "churn." + std::to_string(t)));
}

TEST(RenderSamples, MatchesRegistryRendering) {
  std::vector<Sample> samples{{"a", 1}, {"b", 22}};
  EXPECT_EQ(render_samples(samples), "a 1\nb 22\n");
}

}  // namespace
}  // namespace treelab::obs
