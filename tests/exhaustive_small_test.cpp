// Exhaustive oracle coverage on every rooted tree with <= 8 nodes for the
// bounded and approximate schemes (the exact schemes have their own
// exhaustive suite in exact_schemes_test.cpp). Every (tree, k/eps, pair)
// combination is checked — thousands of distinct structural cases,
// including every possible heavy-path/exceptional-edge configuration that
// can occur at this size.
#include <gtest/gtest.h>

#include "core/approx_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/level_ancestor_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

TEST(ExhaustiveSmall, KDistanceAllTreesAllK) {
  for (NodeId n = 2; n <= 8; ++n) {
    for (const Tree& t : tree::all_rooted_trees(n)) {
      const tree::NcaIndex oracle(t);
      for (std::uint64_t k = 1; k <= 2 * static_cast<std::uint64_t>(n); ++k) {
        const core::KDistanceScheme s(t, k);
        for (NodeId u = 0; u < t.size(); ++u)
          for (NodeId v = 0; v < t.size(); ++v) {
            const auto got =
                core::KDistanceScheme::query(k, s.label(u), s.label(v));
            const std::uint64_t want = oracle.distance(u, v);
            if (want <= k) {
              ASSERT_TRUE(got.within)
                  << "n=" << n << " k=" << k << " u=" << u << " v=" << v;
              ASSERT_EQ(got.distance, want)
                  << "n=" << n << " k=" << k << " u=" << u << " v=" << v;
            } else {
              ASSERT_FALSE(got.within)
                  << "n=" << n << " k=" << k << " u=" << u << " v=" << v;
            }
          }
      }
    }
  }
}

TEST(ExhaustiveSmall, ApproxAllTrees) {
  for (NodeId n = 2; n <= 8; ++n) {
    for (const Tree& t : tree::all_rooted_trees(n)) {
      const tree::NcaIndex oracle(t);
      for (const double eps : {1.0, 0.5, 0.2}) {
        const core::ApproxScheme s(t, eps);
        for (NodeId u = 0; u < t.size(); ++u)
          for (NodeId v = 0; v < t.size(); ++v) {
            const auto got =
                core::ApproxScheme::query(eps, s.label(u), s.label(v));
            const std::uint64_t want = oracle.distance(u, v);
            ASSERT_GE(got, want) << "n=" << n << " u=" << u << " v=" << v;
            ASSERT_LE(static_cast<double>(got),
                      (1 + eps) * static_cast<double>(want) + 1e-9)
                << "n=" << n << " eps=" << eps << " u=" << u << " v=" << v;
          }
      }
    }
  }
}

TEST(ExhaustiveSmall, LevelAncestorFullWalks) {
  for (NodeId n = 2; n <= 8; ++n) {
    for (const Tree& t : tree::all_rooted_trees(n)) {
      const core::LevelAncestorScheme s(t);
      for (NodeId v = 0; v < t.size(); ++v) {
        // Walk from v all the way to the root via labels, matching parents.
        NodeId cur = v;
        bits::BitVec label = s.label(v);
        while (t.parent(cur) != tree::kNoNode) {
          const auto p = core::LevelAncestorScheme::parent(label);
          ASSERT_TRUE(p.has_value());
          cur = t.parent(cur);
          ASSERT_TRUE(*p == s.label(cur)) << "n=" << n << " v=" << v;
          label = *p;
        }
        EXPECT_FALSE(core::LevelAncestorScheme::parent(label).has_value());
      }
    }
  }
}

}  // namespace
