// Exhaustive and randomized oracle tests for the three exact distance
// labeling schemes (Peleg, Alstrup, FGNW): every rooted tree on <= 9 nodes,
// every node pair; plus larger randomized sweeps, weighted lower-bound
// instances, and cross-scheme agreement.
#include <gtest/gtest.h>

#include <random>

#include "bits/bitio.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/binarize.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

template <typename Scheme>
class ExactSchemeTest : public ::testing::Test {};

using Schemes =
    ::testing::Types<core::PelegScheme, core::AlstrupScheme, core::FgnwScheme>;
TYPED_TEST_SUITE(ExactSchemeTest, Schemes);

template <typename Scheme>
void expect_all_pairs(const Tree& t) {
  const Scheme s(t);
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < t.size(); ++u)
    for (NodeId v = 0; v < t.size(); ++v)
      ASSERT_EQ(Scheme::query(s.label(u), s.label(v)), oracle.distance(u, v))
          << "u=" << u << " v=" << v << " n=" << t.size();
}

template <typename Scheme>
void expect_sampled_pairs(const Tree& t, int samples, std::uint64_t seed) {
  const Scheme s(t);
  const tree::NcaIndex oracle(t);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < samples; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    ASSERT_EQ(Scheme::query(s.label(u), s.label(v)), oracle.distance(u, v))
        << "u=" << u << " v=" << v << " n=" << t.size();
  }
}

TYPED_TEST(ExactSchemeTest, ExhaustiveAllTreesUpTo9) {
  for (NodeId n = 1; n <= 9; ++n)
    for (const Tree& t : tree::all_rooted_trees(n)) expect_all_pairs<TypeParam>(t);
}

TYPED_TEST(ExactSchemeTest, RandomMediumTrees) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    expect_all_pairs<TypeParam>(tree::random_tree(120, seed));
}

TYPED_TEST(ExactSchemeTest, AllShapes) {
  for (const auto& shape : tree::standard_shapes())
    expect_all_pairs<TypeParam>(shape.make(100, 41));
}

TYPED_TEST(ExactSchemeTest, WeightedHmTrees) {
  for (int h : {1, 2, 3, 4})
    for (std::uint32_t m : {2u, 7u, 64u})
      expect_all_pairs<TypeParam>(tree::hm_tree(h, m, h * 100 + m));
}

TYPED_TEST(ExactSchemeTest, SubdividedHmTrees) {
  // The unit-weight forms of the lower-bound family exercise deep heavy
  // paths with large per-level distances (where the accumulator machinery
  // actually fires).
  expect_all_pairs<TypeParam>(tree::subdivide(tree::hm_tree(4, 12, 3)));
}

TYPED_TEST(ExactSchemeTest, LargeRandomSampled) {
  expect_sampled_pairs<TypeParam>(tree::random_tree(20000, 9), 4000, 10);
  expect_sampled_pairs<TypeParam>(tree::random_binary_tree(20000, 11), 4000, 12);
  expect_sampled_pairs<TypeParam>(tree::random_windowed_tree(20000, 8, 13),
                                  4000, 14);
}

TYPED_TEST(ExactSchemeTest, SingleAndTinyTrees) {
  expect_all_pairs<TypeParam>(tree::path(1));
  expect_all_pairs<TypeParam>(tree::path(2));
  expect_all_pairs<TypeParam>(tree::star(2));
}

TEST(SchemesAgree, OnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Tree t = tree::random_tree(80, seed);
    const core::PelegScheme p(t);
    const core::AlstrupScheme a(t);
    const core::FgnwScheme f(t);
    for (NodeId u = 0; u < t.size(); ++u)
      for (NodeId v = 0; v < t.size(); ++v) {
        const auto d = core::PelegScheme::query(p.label(u), p.label(v));
        ASSERT_EQ(core::AlstrupScheme::query(a.label(u), a.label(v)), d);
        ASSERT_EQ(core::FgnwScheme::query(f.label(u), f.label(v)), d);
      }
  }
}

TEST(Fgnw, OptionVariantsStayExact) {
  const Tree t = tree::subdivide(tree::hm_tree(4, 8, 5));
  const tree::NcaIndex oracle(t);
  for (const core::FgnwOptions opt :
       {core::FgnwOptions{0, 8, false}, core::FgnwOptions{1, 8, false},
        core::FgnwOptions{4, 8, false}, core::FgnwOptions{0, 2, false},
        core::FgnwOptions{0, 12, false}, core::FgnwOptions{0, 8, true}}) {
    const core::FgnwScheme f(t, opt);
    for (NodeId u = 0; u < t.size(); ++u)
      for (NodeId v = 0; v < t.size(); v += 3)
        ASSERT_EQ(core::FgnwScheme::query(f.label(u), f.label(v)),
                  oracle.distance(u, v))
            << "frag=" << opt.fragment_exponent
            << " thin=" << opt.thin_exponent;
  }
}

TEST(Fgnw, PushesBitsOnAdversarialShapes) {
  // On subdivided (h,M)-trees the fat/accumulator machinery must actually
  // fire; otherwise we are silently testing a degenerate configuration.
  const core::FgnwScheme f(tree::subdivide(tree::hm_tree(6, 32, 7)));
  EXPECT_GT(f.build_info().fat_edges, 0u);
  EXPECT_GT(f.build_info().total_pushed_bits, 0u);
  EXPECT_GT(f.build_info().max_accumulator_bits, 0u);
}

TEST(Fgnw, DistancePayloadBeatsAlstrupOnQuadraticFamily) {
  // The theorems bound the distance-array encoding (the Theta(log^2 n)
  // term). On the lower-bound family, where that term is exercised, FGNW's
  // truncated-distance payload must be well below Alstrup's full distance
  // arrays — ideally approaching the paper's factor 2. Totals at feasible n
  // remain dominated by shared O(log n)-per-level bookkeeping; the benches
  // report both.
  const Tree raw = tree::subdivide(tree::hm_tree(7, 64, 3));
  // Compare apples to apples: Alstrup on the same binarized tree FGNW
  // labels internally.
  const core::FgnwScheme f(raw);
  const core::AlstrupScheme a(tree::binarize(raw).tree);
  EXPECT_LT(2 * f.distance_payload_stats().total_bits,
            3 * a.distance_payload_stats().total_bits)
      << "fgnw payload " << f.distance_payload_stats().avg_bits()
      << " alstrup payload " << a.distance_payload_stats().avg_bits();
  EXPECT_LT(f.distance_payload_stats().max_bits,
            a.distance_payload_stats().max_bits);
}

TEST(Fgnw, AttachedQueryMatchesPlain) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Tree t = tree::subdivide(tree::hm_tree(5, 16, seed));
    const core::FgnwScheme f(t);
    std::vector<core::FgnwAttachedLabel> attached;
    for (NodeId v = 0; v < t.size(); ++v)
      attached.push_back(core::FgnwScheme::attach(f.label(v)));
    const tree::NcaIndex oracle(t);
    for (NodeId u = 0; u < t.size(); u += 2)
      for (NodeId v = 0; v < t.size(); v += 3) {
        ASSERT_EQ(core::FgnwScheme::query(attached[u], attached[v]),
                  oracle.distance(u, v))
            << u << " " << v;
      }
  }
}

TEST(Fgnw, MalformedLabelsThrowNotCrash) {
  const Tree t = tree::random_tree(60, 2);
  const core::FgnwScheme f(t);
  bits::BitVec empty;
  EXPECT_THROW((void)core::FgnwScheme::query(empty, f.label(1)),
               bits::DecodeError);
  const auto& l = f.label(5);
  for (std::size_t cut : {l.size() / 4, l.size() / 2, l.size() - 1}) {
    const bits::BitVec trunc = l.slice(0, cut);
    try {
      (void)core::FgnwScheme::query(trunc, f.label(9));
    } catch (const bits::DecodeError&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(LabelStats, Aggregation) {
  core::LabelStats s;
  s.add(10);
  s.add(30);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max_bits, 30u);
  EXPECT_DOUBLE_EQ(s.avg_bits(), 20.0);
}

}  // namespace
