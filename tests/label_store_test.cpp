// LabelStore round-trip coverage across every distance scheme: save from
// the pooled arena, load into both representations (vector and arena),
// verify bit-exact labels and query parity against a brute-force oracle —
// plus truncation/corruption failure cases for the header and the payload.
// This is the ship-and-serve loop: labels computed centrally must come back
// from the wire indistinguishable from the originals.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <limits>
#include <random>
#include <string>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "core/tree_scaffold.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"
#include "util/failpoint.hpp"
#include "util/io_error.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

constexpr NodeId kN = 300;

/// Saves `labels`, loads them back through both load() and load_arena(),
/// and checks scheme/params/bit-exactness.
template <typename Labels>
core::LabelStore::Loaded roundtrip(const Labels& labels, const char* scheme,
                                   const char* params) {
  std::stringstream ss;
  core::LabelStore::save(ss, scheme, labels, params);
  const std::string wire = ss.str();

  std::stringstream in1(wire);
  const auto loaded = core::LabelStore::load(in1);
  EXPECT_EQ(loaded.scheme, scheme);
  EXPECT_EQ(loaded.params, params);
  EXPECT_EQ(loaded.labels.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_TRUE(loaded.labels[i] == labels[i]) << scheme << " label " << i;

  std::stringstream in2(wire);
  const auto arena = core::LabelStore::load_arena(in2);
  EXPECT_EQ(arena.scheme, scheme);
  EXPECT_EQ(arena.params, params);
  EXPECT_EQ(arena.labels.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_TRUE(arena.labels[i] == labels[i])
        << scheme << " arena label " << i;
  return loaded;
}

TEST(LabelStoreSchemes, FgnwRoundtripAndQueryParity) {
  const Tree t = tree::random_tree(kN, 41);
  const core::FgnwScheme s(t);
  const auto loaded = roundtrip(s.labels(), "fgnw", "");
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 7)
      ASSERT_EQ(core::FgnwScheme::query(loaded.labels[u], loaded.labels[v]),
                oracle.distance(u, v));
}

TEST(LabelStoreSchemes, AlstrupRoundtripAndQueryParity) {
  const Tree t = tree::random_tree(kN, 42);
  const core::AlstrupScheme s(t);
  const auto loaded = roundtrip(s.labels(), "alstrup", "");
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 7)
      ASSERT_EQ(core::AlstrupScheme::query(loaded.labels[u], loaded.labels[v]),
                oracle.distance(u, v));
}

TEST(LabelStoreSchemes, PelegRoundtripAndQueryParity) {
  const Tree t = tree::random_tree(kN, 43);
  const core::PelegScheme s(t);
  const auto loaded = roundtrip(s.labels(), "peleg", "");
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 7)
      ASSERT_EQ(core::PelegScheme::query(loaded.labels[u], loaded.labels[v]),
                oracle.distance(u, v));
}

TEST(LabelStoreSchemes, ApproxRoundtripAndQueryParity) {
  const Tree t = tree::random_tree(kN, 44);
  const double eps = 0.25;
  const core::ApproxScheme s(t, eps);
  const auto loaded = roundtrip(s.labels(), "approx", "eps=0.25");
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 7)
      ASSERT_EQ(
          core::ApproxScheme::query(eps, loaded.labels[u], loaded.labels[v]),
          core::ApproxScheme::query(eps, s.label(u), s.label(v)));
}

TEST(LabelStoreSchemes, KDistanceRoundtripAndQueryParity) {
  const Tree t = tree::random_tree(kN, 45);
  const std::uint64_t k = 6;
  const core::KDistanceScheme s(t, k);
  const auto loaded = roundtrip(s.labels(), "kdistance", "k=6");
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 7) {
      const auto got =
          core::KDistanceScheme::query(k, loaded.labels[u], loaded.labels[v]);
      const std::uint64_t d = oracle.distance(u, v);
      ASSERT_EQ(got.within, d <= k);
      if (got.within) {
        ASSERT_EQ(got.distance, d);
      }
    }
}

TEST(LabelStoreSchemes, ParallelBuiltLabelsShipIdentically) {
  // The wire bytes must not depend on construction thread count either.
  const Tree t = tree::random_tree(kN, 46);
  const core::TreeScaffold s1(t, 1), s4(t, 4);
  std::stringstream a, b;
  core::LabelStore::save(a, "fgnw", core::FgnwScheme(s1).labels());
  core::LabelStore::save(b, "fgnw", core::FgnwScheme(s4).labels());
  EXPECT_EQ(a.str(), b.str());
}

TEST(LabelStoreFailure, TruncatedEverywhere) {
  const Tree t = tree::random_tree(60, 47);
  const core::FgnwScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "fgnw", s.labels(), "p=1");
  const std::string wire = ss.str();
  // Every strict prefix must throw (the container has no trailing slack).
  for (std::size_t len = 0; len < wire.size();
       len += 1 + len / 9) {  // denser probing near the header
    std::stringstream in(wire.substr(0, len));
    EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error)
        << "prefix " << len;
    std::stringstream in2(wire.substr(0, len));
    EXPECT_THROW((void)core::LabelStore::load_arena(in2), std::runtime_error)
        << "arena prefix " << len;
  }
}

/// One corrupted wire image through a loader: must either throw
/// std::runtime_error or produce a labeling that is safe to walk — never
/// read out of bounds (the ASan+UBSan CI job is the teeth behind this).
template <typename Load>
void expect_throws_or_loads(const std::string& wire, const Load& load,
                            const char* what, std::size_t pos) {
  try {
    const auto arena = load(wire);
    std::size_t total = 0;
    for (std::size_t i = 0; i < arena.size(); ++i) {
      total += arena.label_bits(i);
      const auto v = arena.view(i);
      if (v.size() != 0) (void)v.get(v.size() - 1);
    }
    (void)total;
  } catch (const std::runtime_error&) {
    // includes DecodeError; loud failure is the other acceptable outcome
  } catch (...) {
    FAIL() << what << ": unexpected exception type at bit " << pos;
  }
}

/// Flips single bits across an entire wire image and pushes the result
/// through `load`. Probes every header byte densely and samples the
/// payload (the images are a few KB).
template <typename Load>
void bit_flip_sweep(const std::string& wire, const Load& load,
                    const char* what) {
  for (std::size_t bit = 0; bit < wire.size() * 8;
       bit += 1 + bit / 24) {
    std::string bad = wire;
    bad[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bad[bit / 8]) ^ (1u << (bit % 8)));
    expect_throws_or_loads(bad, load, what, bit);
  }
}

TEST(LabelStoreFailure, BitFlippedV1ContainerNeverReadsOutOfBounds) {
  const Tree t = tree::random_tree(40, 49);
  const core::FgnwScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "fgnw", s.labels(), "p=1");
  bit_flip_sweep(ss.str(), [](const std::string& wire) {
    std::stringstream in(wire);
    return core::LabelStore::load_arena(in).labels;
  }, "v1 load_arena");
}

TEST(LabelStoreFailure, BitFlippedV2ContainerNeverReadsOutOfBounds) {
  // Mirror of the v1 loop for the mappable container, through both the
  // streamed loader and the zero-copy open_mapped path — the mmap'ed BitSpan
  // views are exactly what the sanitizer job should sweep.
  const Tree t = tree::random_tree(40, 50);
  const core::AlstrupScheme s(t);
  std::stringstream ss;
  core::LabelStore::save_mappable(ss, "alstrup", s.labels(), "p=2");
  const std::string wire = ss.str();

  bit_flip_sweep(wire, [](const std::string& w) {
    std::stringstream in(w);
    return core::LabelStore::load_arena(in).labels;
  }, "v2 load_arena");

  const std::string path =
      testing::TempDir() + "treelab_store_v2_bitflip.lbl";
  bit_flip_sweep(wire, [&path](const std::string& w) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(w.data(), static_cast<std::streamsize>(w.size()));
    out.close();
    return std::move(core::LabelStore::open_mapped(path).labels);
  }, "v2 open_mapped");
  std::remove(path.c_str());
}

// --- version-3 delta container sweeps --------------------------------------

/// A small but representative delta: inserts + deletes + a compaction on a
/// stable-weight relabeler, shipped through the real producer.
struct DeltaFixture {
  bits::LabelArena base;
  std::string wire;
  core::LabelDelta delta;  // the parsed form (known-good)
};

DeltaFixture make_delta_fixture() {
  const Tree t = tree::random_tree(80, 51);
  core::IncrementalRelabeler r(t);
  DeltaFixture f;
  f.base = r.labels();
  std::mt19937_64 rng(52);
  for (int e = 0; e < 12; ++e) {
    try {
      if (e % 3 == 0)
        r.delete_leaf(static_cast<NodeId>(rng() % r.size()));
      else
        (void)r.insert_leaf(static_cast<NodeId>(rng() % r.size()));
    } catch (const std::exception&) {
    }
  }
  (void)r.compact();
  std::stringstream ss;
  r.ship_delta(ss);
  f.wire = ss.str();
  std::stringstream in(f.wire);
  f.delta = core::LabelStore::load_delta(in);
  return f;
}

/// One corrupted delta image: must either throw std::runtime_error (from
/// load or from apply-against-base) or produce an arena that is safe to
/// walk — never UB/OOM. The checksum catches nearly everything; the
/// structural validation is the backstop the adversarial tests poke at
/// directly.
void expect_delta_throws_or_applies(const DeltaFixture& f,
                                    const std::string& bad, std::size_t pos) {
  try {
    std::stringstream in(bad);
    const core::LabelDelta d = core::LabelStore::load_delta(in);
    bits::LabelArena copy = f.base;
    const bits::LabelArena out = core::LabelStore::apply_delta(
        bits::MappedArena::adopt(std::move(copy)), d);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto v = out.view(i);
      if (v.size() != 0) (void)v.get(v.size() - 1);
    }
  } catch (const std::runtime_error&) {
    // loud failure is the other acceptable outcome
  } catch (...) {
    FAIL() << "unexpected exception type at bit " << pos;
  }
}

TEST(LabelStoreDelta, BitFlippedDeltaNeverReadsOutOfBounds) {
  const DeltaFixture f = make_delta_fixture();
  for (std::size_t bit = 0; bit < f.wire.size() * 8; bit += 1 + bit / 24) {
    std::string bad = f.wire;
    bad[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bad[bit / 8]) ^ (1u << (bit % 8)));
    expect_delta_throws_or_applies(f, bad, bit);
  }
}

TEST(LabelStoreDelta, TruncatedDeltaAlwaysThrows) {
  const DeltaFixture f = make_delta_fixture();
  for (std::size_t len = 0; len < f.wire.size(); len += 1 + len / 9) {
    std::stringstream in(f.wire.substr(0, len));
    EXPECT_THROW((void)core::LabelStore::load_delta(in), std::runtime_error)
        << "prefix " << len;
  }
}

TEST(LabelStoreDelta, AdversarialRunDirectories) {
  // Program-built deltas take the same structural scrutiny as wire ones:
  // overlapping/unsorted runs, out-of-range ids, wrapping counts, and
  // payload/dirty mismatches must all throw — from save_delta (caller bug:
  // invalid_argument) and from apply_delta (runtime_error) — never
  // allocate count-sized memory or read out of bounds.
  const DeltaFixture f = make_delta_fixture();
  const auto expect_invalid = [&](core::LabelDelta d, const char* what) {
    std::stringstream ss;
    EXPECT_THROW(core::LabelStore::save_delta(ss, d), std::invalid_argument)
        << what;
    bits::LabelArena copy = f.base;
    EXPECT_THROW((void)core::LabelStore::apply_delta(
                     bits::MappedArena::adopt(std::move(copy)), d),
                 std::runtime_error)
        << what;
  };
  {
    core::LabelDelta d = f.delta;
    d.dropped = {{5, 4}, {3, 2}};  // unsorted + overlapping
    expect_invalid(std::move(d), "unsorted dropped runs");
  }
  {
    core::LabelDelta d = f.delta;
    d.dropped = {{70, 1u << 20}};  // far past base_count
    expect_invalid(std::move(d), "dropped run out of range");
  }
  {
    core::LabelDelta d = f.delta;
    d.dropped = {{0, 0}};  // empty run
    expect_invalid(std::move(d), "empty dropped run");
  }
  {
    core::LabelDelta d = f.delta;
    d.dropped.push_back(
        {std::numeric_limits<std::uint64_t>::max() - 1, 2});  // wraps
    expect_invalid(std::move(d), "wrapping dropped run");
  }
  {
    core::LabelDelta d = f.delta;
    if (!d.dirty.empty()) {
      d.dirty.back() = d.new_count + 7;  // out of range
      expect_invalid(std::move(d), "dirty id out of range");
    }
  }
  {
    core::LabelDelta d = f.delta;
    std::reverse(d.dirty.begin(), d.dirty.end());  // unsorted
    if (d.dirty.size() > 1)
      expect_invalid(std::move(d), "unsorted dirty ids");
  }
  {
    core::LabelDelta d = f.delta;
    d.dirty.pop_back();  // payload no longer matches
    expect_invalid(std::move(d), "payload/dirty mismatch");
  }
  {
    core::LabelDelta d = f.delta;
    d.new_count += 3;  // appended tail has no payload
    expect_invalid(std::move(d), "uncovered appended ids");
  }
}

TEST(LabelStoreDelta, ApplyRefusesTheWrongBase) {
  const DeltaFixture f = make_delta_fixture();
  // A different tree's labeling with the same node count: the lens hash
  // must refuse it before any splicing happens.
  const core::AlstrupScheme other(
      tree::random_tree(80, 77), {nca::CodeWeights::kStablePow2, 1});
  bits::LabelArena copy = other.labels();
  EXPECT_THROW((void)core::LabelStore::apply_delta(
                   bits::MappedArena::adopt(std::move(copy)), f.delta),
               std::runtime_error);
  // And a right-sized arena truncated by one label fails on the count.
  std::vector<std::size_t> ids(79);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  bits::LabelArena short_base = bits::LabelArena::gathered(f.base, ids);
  EXPECT_THROW((void)core::LabelStore::apply_delta(
                   bits::MappedArena::adopt(std::move(short_base)), f.delta),
               std::runtime_error);
}

TEST(LabelStoreDelta, LensHashIsRepresentationIndependent) {
  const Tree t = tree::random_tree(120, 53);
  const core::AlstrupScheme s(t);
  const std::uint64_t h1 = core::LabelStore::lens_hash(s.labels());
  // Through the v2 container and back via open_mapped (owned or mapped —
  // the hash must not care).
  const std::string path = testing::TempDir() + "treelab_lens_hash.lbl";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    core::LabelStore::save_mappable(out, "alstrup", s.labels(), "");
  }
  const auto opened = core::LabelStore::open_mapped(path);
  EXPECT_EQ(core::LabelStore::lens_hash(opened.labels), h1);
  std::remove(path.c_str());
}

TEST(LabelStorePersistence, SaveFileIsAtomicUnderTornWrite) {
  const Tree t = tree::random_tree(40, 49);
  const core::AlstrupScheme s(t);
  const std::string path =
      testing::TempDir() + "treelab_store_atomic.lbl";
  core::LabelStore::save_file(path, "alstrup", s.labels());
  const auto before = core::LabelStore::open_mapped(path);

  // A crash mid-overwrite must leave the previous file fully readable:
  // save_file goes through temp + fsync + rename.
  const core::FgnwScheme other(t);
  util::failpoint::arm("fs.write", util::FailMode::kTornWrite, 0, 1, 8);
  EXPECT_THROW(core::LabelStore::save_file(path, "fgnw", other.labels()),
               util::FailpointAbort);
  util::failpoint::disarm_all();
  const auto after = core::LabelStore::open_mapped(path);
  EXPECT_EQ(after.scheme, "alstrup");
  ASSERT_EQ(after.labels.size(), before.labels.size());
  for (std::size_t i = 0; i < after.labels.size(); ++i)
    EXPECT_TRUE(after.labels.view(i) == before.labels.view(i));

  // Without the failpoint the overwrite completes and swaps cleanly.
  core::LabelStore::save_file(path, "fgnw", other.labels());
  EXPECT_EQ(core::LabelStore::open_mapped(path).scheme, "fgnw");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(LabelStorePersistence, MissingFileIsIoErrorWithPathAndErrno) {
  const std::string path =
      testing::TempDir() + "treelab_store_no_such_file.lbl";
  try {
    (void)core::LabelStore::open_mapped(path);
    FAIL() << "expected IoError";
  } catch (const util::IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.error_code(), ENOENT);
  }
}

TEST(LabelStoreFailure, CorruptHeaderFields) {
  const Tree t = tree::random_tree(30, 48);
  const core::AlstrupScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "alstrup", s.labels());
  const std::string wire = ss.str();

  {  // bad magic
    std::string bad = wire;
    bad[2] ^= 0x40;
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error);
  }
  {  // unsupported version
    std::string bad = wire;
    bad[4] = 9;
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load_arena(in), std::runtime_error);
  }
  {  // oversized scheme-string length
    std::string bad = wire;
    bad[10] = '\x7f';  // high byte of the scheme length field
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load(in), std::runtime_error);
  }
  {  // implausible label count (little-endian u64 right after the strings)
    std::string bad = wire;
    const std::size_t count_off = 4 + 4 + 4 + 7 /*"alstrup"*/ + 4;
    bad[count_off + 7] = '\x01';  // 2^56 labels
    std::stringstream in(bad);
    EXPECT_THROW((void)core::LabelStore::load_arena(in), std::runtime_error);
  }
}

}  // namespace
