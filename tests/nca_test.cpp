// NcaLabeling (Lemma 2.1): lightdepth(u,v), ancestry and branch order must
// be recovered from two labels alone, and label sizes must stay O(log n).
#include <gtest/gtest.h>

#include <cmath>

#include "bits/bitio.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using nca::NcaLabeling;
using nca::NcaResult;
using tree::NodeId;
using tree::Tree;

void expect_nca_correct(const Tree& t) {
  const tree::HeavyPathDecomposition hpd(t);
  const NcaLabeling labels(hpd);
  const tree::CollapsedTree ct(hpd);
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < t.size(); ++u)
    for (NodeId v = 0; v < t.size(); ++v) {
      const NcaResult res = NcaLabeling::query(labels.label(u), labels.label(v));
      const NodeId w = oracle.nca(u, v);
      ASSERT_EQ(res.lightdepth, hpd.light_depth(w))
          << "u=" << u << " v=" << v << " n=" << t.size();
      using Rel = NcaResult::Rel;
      if (u == v) {
        ASSERT_EQ(res.rel, Rel::kEqual);
      } else if (w == u) {
        ASSERT_EQ(res.rel, Rel::kUAncestor);
      } else if (w == v) {
        ASSERT_EQ(res.rel, Rel::kVAncestor);
      } else {
        ASSERT_EQ(res.rel, Rel::kDiverge);
        // Branch order must equal the collapsed-tree domination order.
        ASSERT_EQ(res.u_first, ct.dominates(u, v))
            << "u=" << u << " v=" << v;
      }
    }
}

class NcaShapeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NcaShapeTest, AllPairs) {
  const auto& shape = tree::standard_shapes()[GetParam()];
  expect_nca_correct(shape.make(90, 11));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NcaShapeTest,
                         ::testing::Range<std::size_t>(0, 9));

TEST(NcaLabeling, ExhaustiveSmallTrees) {
  for (NodeId n = 1; n <= 7; ++n)
    for (const Tree& t : tree::all_rooted_trees(n)) expect_nca_correct(t);
}

TEST(NcaLabeling, BinarizedLeafQueries) {
  const auto bt = tree::binarize(tree::random_tree(150, 23));
  expect_nca_correct(bt.tree);
}

TEST(NcaLabeling, LabelSizeIsLogarithmic) {
  // Max label size should grow like c * log n, not log^2 n.
  double prev_max = 0;
  for (int lg = 8; lg <= 15; ++lg) {
    const Tree t = tree::random_binary_tree(1 << lg, 5);
    const tree::HeavyPathDecomposition hpd(t);
    const NcaLabeling labels(hpd);
    std::size_t mx = 0;
    for (NodeId v = 0; v < t.size(); ++v)
      mx = std::max(mx, labels.label(v).size());
    EXPECT_LE(static_cast<double>(mx), 24.0 * lg) << "n=2^" << lg;
    prev_max = static_cast<double>(mx);
  }
  (void)prev_max;
}

TEST(NcaLabeling, LightdepthOfLabel) {
  const Tree t = tree::random_tree(200, 3);
  const tree::HeavyPathDecomposition hpd(t);
  const NcaLabeling labels(hpd);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_EQ(NcaLabeling::lightdepth_of_label(labels.label(v)),
              hpd.light_depth(v));
}

TEST(NcaLabeling, MalformedLabelThrows) {
  const Tree t = tree::random_tree(50, 1);
  const tree::HeavyPathDecomposition hpd(t);
  const NcaLabeling labels(hpd);
  bits::BitVec empty;
  EXPECT_THROW((void)NcaLabeling::query(empty, labels.label(0)),
               bits::DecodeError);
  const auto& l = labels.label(7);
  if (l.size() > 4) {
    const bits::BitVec cut = l.slice(0, l.size() / 2);
    // Either decodes to garbage relations or throws; must never crash. The
    // contract we verify: no undefined behaviour and DecodeError is the only
    // exception type.
    try {
      (void)NcaLabeling::query(cut, labels.label(3));
    } catch (const bits::DecodeError&) {
    }
  }
}

}  // namespace
