// Dynamic-forest coverage: IncrementalRelabeler must hold one invariant
// above all — after any sequence of leaf inserts, its spliced arena is
// bit-identical to AlstrupScheme built from scratch on the edited tree with
// the same (kStablePow2) weight policy. This is asserted label by label
// across randomized edit sequences over every tree shape, the same way
// parallel_build_test asserts thread-count parity. Plus: the stable weight
// policy itself answers distance queries exactly, fallbacks are counted and
// produce the same bits, and the serving hand-off (to_loaded) round-trips.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using core::AlstrupOptions;
using core::AlstrupScheme;
using core::IncrementalRelabeler;
using core::RelabelOptions;
using core::RelabelOutcome;
using tree::NodeId;
using tree::Tree;

constexpr AlstrupOptions kStable{nca::CodeWeights::kStablePow2, 1};

void expect_arena_equal(const bits::LabelArena& got,
                        const bits::LabelArena& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.label_bits(i), want.label_bits(i)) << what << " label " << i;
    ASSERT_TRUE(got.view(i) == want.view(i)) << what << " label " << i;
  }
}

TEST(StableWeights, AlstrupAnswersExactlyUnderThePow2Policy) {
  // The policy changes code weights, not query semantics: codes stay
  // prefix-free and order-preserving, so distances are still exact.
  for (const std::uint64_t seed : {3u, 4u}) {
    const Tree t = tree::random_tree(240, seed);
    const AlstrupScheme s(t, kStable);
    const tree::NcaIndex oracle(t);
    for (NodeId u = 0; u < t.size(); u += 7)
      for (NodeId v = 0; v < t.size(); v += 5)
        ASSERT_EQ(AlstrupScheme::query(s.label(u), s.label(v)),
                  oracle.distance(u, v))
            << "seed " << seed << " u=" << u << " v=" << v;
  }
}

TEST(StableWeights, PolicyIsDeterministicAcrossThreadCounts) {
  const Tree t = tree::random_tree(300, 9);
  const AlstrupScheme s1(t, {nca::CodeWeights::kStablePow2, 1});
  const AlstrupScheme s4(t, {nca::CodeWeights::kStablePow2, 4});
  expect_arena_equal(s4.labels(), s1.labels(), "threads");
}

/// The core parity loop: apply `edits` random leaf inserts to `base`,
/// checking after every edit that the incremental arena matches a
/// from-scratch rebuild bit for bit.
void run_parity(const Tree& base, int edits, std::uint64_t seed,
                RelabelOptions opt, const char* what) {
  IncrementalRelabeler r(base, opt);
  expect_arena_equal(r.labels(), AlstrupScheme(base, kStable).labels(), what);
  std::mt19937_64 rng(seed);
  for (int e = 0; e < edits; ++e) {
    const auto parent =
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size()));
    const auto weight = static_cast<std::uint32_t>(1 + rng() % 3);
    (void)r.insert_leaf(parent, weight);
    const Tree now = r.snapshot();
    const AlstrupScheme fresh(now, kStable);
    expect_arena_equal(r.labels(), fresh.labels(), what);
    if (testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << what << ": mismatch after edit " << e;
      return;
    }
    // Bits matching is the contract; the internal decomposition matching a
    // fresh one is the invariant that keeps it true on the NEXT edit.
    try {
      r.check_state();
    } catch (const std::logic_error& err) {
      ADD_FAILURE() << what << " after edit " << e << ": " << err.what();
      return;
    }
  }
  EXPECT_EQ(r.stats().edits, static_cast<std::uint64_t>(edits));
  EXPECT_EQ(r.stats().edits,
            r.stats().incremental + r.stats().restructured +
                r.stats().full_heavy_flip + r.stats().full_dirty_cone);
}

TEST(IncrementalRelabel, BitIdenticalAcrossRandomEditSequences) {
  run_parity(tree::random_tree(400, 21), 60, 101, {}, "random");
  run_parity(tree::random_binary_tree(300, 22), 60, 102, {}, "random-binary");
}

TEST(IncrementalRelabel, BitIdenticalOnExtremeShapes) {
  run_parity(tree::path(150), 40, 103, {}, "path");
  run_parity(tree::star(150), 40, 104, {}, "star");
  run_parity(tree::caterpillar(40, 6), 40, 105, {}, "caterpillar");
  run_parity(tree::balanced(2, 7), 40, 106, {}, "balanced-binary");
  run_parity(tree::spider(8, 20), 40, 107, {}, "spider");
}

TEST(IncrementalRelabel, TinyTreesGrowCorrectlyFromOneNode) {
  // n = 1 upward: every structural edge case (first child, first light
  // child, path extension at the root) appears in the first few inserts.
  run_parity(Tree(std::vector<NodeId>{tree::kNoNode}), 40, 108, {}, "tiny");
}

TEST(IncrementalRelabel, ForcedFallbacksProduceTheSameBits) {
  // max_dirty_fraction = 0 forces the full-rebuild path on every edit (the
  // floor of 256 dirty labels keeps small trees incremental, so use a tree
  // comfortably past it).
  RelabelOptions always_full;
  always_full.max_dirty_fraction = 0.0;
  const Tree base = tree::random_tree(900, 23);
  IncrementalRelabeler full(base, always_full);
  IncrementalRelabeler inc(base, {});
  std::mt19937_64 rng(300);
  for (int e = 0; e < 25; ++e) {
    const auto parent =
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(full.size()));
    (void)full.insert_leaf(parent);
    (void)inc.insert_leaf(parent);
    ASSERT_NO_FATAL_FAILURE(
        expect_arena_equal(inc.labels(), full.labels(), "forced-full"));
  }
  EXPECT_EQ(full.stats().full_dirty_cone + full.stats().full_heavy_flip, 25u);
  EXPECT_EQ(full.stats().incremental + full.stats().restructured, 0u);
}

TEST(IncrementalRelabel, MostEditsAreIncrementalOnRandomTrees) {
  const Tree base = tree::random_tree(4000, 24);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(400);
  for (int e = 0; e < 120; ++e)
    (void)r.insert_leaf(
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size())));
  const auto& st = r.stats();
  EXPECT_EQ(st.edits, 120u);
  // The point of the stable policy + local restructuring: the typical edit
  // re-emits a small cone instead of rebuilding the world.
  EXPECT_GT(st.incremental + st.restructured, 100u);
  EXPECT_GT(st.labels_spliced, st.labels_reemitted);
}

TEST(IncrementalRelabel, QueriesStayExactWhileGrowing) {
  const Tree base = tree::random_tree(250, 25);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(500);
  for (int e = 0; e < 50; ++e)
    (void)r.insert_leaf(
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size())),
        static_cast<std::uint32_t>(1 + rng() % 4));
  const Tree now = r.snapshot();
  const tree::NcaIndex oracle(now);
  const auto& labels = r.labels();
  for (NodeId u = 0; u < now.size(); u += 11)
    for (NodeId v = 0; v < now.size(); v += 7)
      ASSERT_EQ(AlstrupScheme::query(labels[static_cast<std::size_t>(u)],
                                     labels[static_cast<std::size_t>(v)]),
                oracle.distance(u, v));
}

TEST(IncrementalRelabel, ToLoadedHandsOffTheCurrentLabels) {
  const Tree base = tree::random_tree(120, 26);
  IncrementalRelabeler r(base);
  (void)r.insert_leaf(5);
  const auto loaded = r.to_loaded();
  EXPECT_EQ(loaded.scheme, "alstrup");
  expect_arena_equal(loaded.labels, r.labels(), "to_loaded");
}

TEST(IncrementalRelabel, BadParentThrows) {
  IncrementalRelabeler r(tree::random_tree(50, 27));
  EXPECT_THROW((void)r.insert_leaf(-1), std::out_of_range);
  EXPECT_THROW((void)r.insert_leaf(50), std::out_of_range);
  EXPECT_EQ(r.stats().edits, 0u);
}

/// Parity through the dense map: live labels match a fresh stable-weight
/// build on the compacted snapshot, non-live ids hold zero-length labels.
void expect_sparse_parity(const IncrementalRelabeler& r, const char* what) {
  const AlstrupScheme fresh(r.snapshot(), kStable);
  const auto map = r.dense_map();
  const auto& got = r.labels();
  ASSERT_EQ(got.size(), map.size()) << what;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map[i] == tree::kNoNode) {
      ASSERT_EQ(got.label_bits(i), 0u) << what << " tombstone " << i;
      continue;
    }
    const auto j = static_cast<std::size_t>(map[i]);
    ASSERT_EQ(got.label_bits(i), fresh.labels().label_bits(j))
        << what << " label " << i;
    ASSERT_TRUE(got.view(i) == fresh.labels()[j]) << what << " label " << i;
  }
}

TEST(EditModel, DeleteLeafTombstonesAndStaysBitIdentical) {
  const Tree base = tree::random_tree(300, 31);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(600);
  int deleted = 0;
  for (int e = 0; e < 60; ++e) {
    // Find a live non-root leaf in the snapshot of ids.
    NodeId victim = tree::kNoNode;
    for (int tries = 0; tries < 200; ++tries) {
      const auto v = static_cast<NodeId>(rng() % r.size());
      if (r.alive(v) && r.snapshot().size() > 1) {
        // delete_leaf itself rejects non-leaves; probe via the API.
        try {
          r.delete_leaf(v);
          victim = v;
          break;
        } catch (const std::invalid_argument&) {
        } catch (const std::out_of_range&) {
        }
      }
    }
    if (victim == tree::kNoNode) continue;
    ++deleted;
    ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "delete"));
    ASSERT_NO_THROW(r.check_state());
  }
  EXPECT_GT(deleted, 20);
  EXPECT_EQ(r.live_size(), 300u - static_cast<std::size_t>(deleted));
  EXPECT_EQ(r.size(), 300u);  // tombstones keep the id space
}

TEST(EditModel, DeleteValidation) {
  //      0
  //     / \.
  //    1   2
  //        |
  //        3
  const Tree t(std::vector<NodeId>{tree::kNoNode, 0, 0, 2});
  IncrementalRelabeler r(t);
  EXPECT_THROW(r.delete_leaf(0), std::invalid_argument);  // root
  EXPECT_THROW(r.delete_leaf(2), std::invalid_argument);  // not a leaf
  EXPECT_THROW(r.delete_leaf(9), std::out_of_range);
  r.delete_leaf(3);
  EXPECT_FALSE(r.alive(3));
  EXPECT_THROW(r.delete_leaf(3), std::out_of_range);  // already dead
  r.delete_leaf(2);                                   // became a leaf
  EXPECT_EQ(r.live_size(), 2u);
  ASSERT_NO_THROW(r.check_state());
}

TEST(EditModel, CompactRenumbersDenselyWithoutChangingBits) {
  const Tree base = tree::random_tree(200, 32);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(700);
  // Kill some leaves, then compact.
  int deleted = 0;
  while (deleted < 40) {
    const auto v = static_cast<NodeId>(rng() % r.size());
    try {
      r.delete_leaf(v);
      ++deleted;
    } catch (const std::exception&) {
    }
  }
  const bits::LabelArena before = r.labels();
  const std::vector<NodeId> map = r.compact();
  EXPECT_EQ(r.stats().compactions, 1u);
  EXPECT_EQ(r.size(), 160u);
  EXPECT_EQ(r.live_size(), 160u);
  // Every surviving label kept its bits at the remapped index.
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map[i] == tree::kNoNode) continue;
    const auto j = static_cast<std::size_t>(map[i]);
    ASSERT_TRUE(before.view(i) == r.labels().view(j)) << i;
  }
  ASSERT_NO_THROW(r.check_state());
  ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "post-compact"));
  // Editing keeps working in the new id space.
  (void)r.insert_leaf(10);
  ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "post-compact insert"));
}

TEST(EditModel, DetachAttachMovesASubtreeBitIdentically) {
  const Tree base = tree::random_tree(400, 33);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(800);
  for (int e = 0; e < 30; ++e) {
    // Detach a random non-root subtree...
    NodeId v = tree::kNoNode;
    while (v == tree::kNoNode) {
      const auto c = static_cast<NodeId>(rng() % r.size());
      if (r.alive(c) && c != 0) v = c;  // node 0 is the root of random_tree
    }
    r.detach_subtree(v);
    EXPECT_EQ(r.detached_root(), v);
    EXPECT_FALSE(r.alive(v));
    ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "detached"));
    ASSERT_NO_THROW(r.check_state());
    // ...and graft it somewhere else.
    NodeId p = tree::kNoNode;
    while (p == tree::kNoNode) {
      const auto c = static_cast<NodeId>(rng() % r.size());
      if (r.alive(c)) p = c;
    }
    r.attach_subtree(p, static_cast<std::uint32_t>(1 + rng() % 3));
    EXPECT_EQ(r.detached_root(), tree::kNoNode);
    EXPECT_TRUE(r.alive(v));
    ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "attached"));
    ASSERT_NO_THROW(r.check_state());
  }
  EXPECT_EQ(r.live_size(), 400u);
}

TEST(EditModel, DetachAttachValidation) {
  const Tree t(std::vector<NodeId>{tree::kNoNode, 0, 1, 1});
  IncrementalRelabeler r(t);
  EXPECT_THROW(r.detach_subtree(0), std::invalid_argument);  // root
  EXPECT_THROW(r.detach_subtree(7), std::out_of_range);
  EXPECT_THROW(r.attach_subtree(0), std::logic_error);  // nothing pending
  r.detach_subtree(1);  // takes 2 and 3 with it
  EXPECT_FALSE(r.alive(2));
  EXPECT_EQ(r.live_size(), 1u);
  EXPECT_THROW(r.detach_subtree(2), std::out_of_range);  // not live
  EXPECT_THROW(r.compact(), std::logic_error);           // pending detach
  EXPECT_THROW(r.attach_subtree(1), std::out_of_range);  // parent not live
  r.attach_subtree(0, 5);
  EXPECT_EQ(r.live_size(), 4u);
  ASSERT_NO_THROW(r.check_state());
  ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "re-attach"));
}

TEST(EditModel, WeightUpdateDirtiesExactlyTheSubtree) {
  const Tree base = tree::random_tree(500, 34);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(900);
  for (int e = 0; e < 40; ++e) {
    const auto v = static_cast<NodeId>(1 + rng() % (r.size() - 1));
    const auto w = static_cast<std::uint32_t>(rng() % 6);
    r.set_edge_weight(v, w);
    ASSERT_NO_FATAL_FAILURE(expect_sparse_parity(r, "weight"));
    ASSERT_NO_THROW(r.check_state());
    if (r.last_outcome() == RelabelOutcome::kIncremental) {
      EXPECT_LE(r.last_dirty_count(),
                static_cast<std::size_t>(
                    r.snapshot().subtree_size(v)));
    }
  }
  EXPECT_THROW(r.set_edge_weight(0, 3), std::invalid_argument);  // root
  // Distances stay exact after reweighting.
  const Tree now = r.snapshot();
  const tree::NcaIndex oracle(now);
  const auto& labels = r.labels();
  for (NodeId u = 0; u < now.size(); u += 17)
    for (NodeId v = 0; v < now.size(); v += 13)
      ASSERT_EQ(AlstrupScheme::query(labels[static_cast<std::size_t>(u)],
                                     labels[static_cast<std::size_t>(v)]),
                oracle.distance(u, v));
}

TEST(EditModel, MixedEditsKeepQueriesExact) {
  // The end-to-end sanity pass: grow, shrink, move, reweight, compact —
  // then check real distance queries against an oracle on the final tree.
  const Tree base = tree::random_tree(150, 35);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(1000);
  for (int e = 0; e < 200; ++e) {
    const int op = static_cast<int>(rng() % 10);
    try {
      if (op < 4) {
        NodeId p;
        do p = static_cast<NodeId>(rng() % r.size());
        while (!r.alive(p));
        (void)r.insert_leaf(p, static_cast<std::uint32_t>(rng() % 4));
      } else if (op < 6) {
        r.delete_leaf(static_cast<NodeId>(rng() % r.size()));
      } else if (op < 7) {
        r.set_edge_weight(static_cast<NodeId>(rng() % r.size()),
                          static_cast<std::uint32_t>(rng() % 4));
      } else if (op < 9) {
        if (r.detached_root() == tree::kNoNode) {
          r.detach_subtree(static_cast<NodeId>(rng() % r.size()));
        } else {
          NodeId p;
          do p = static_cast<NodeId>(rng() % r.size());
          while (!r.alive(p));
          r.attach_subtree(p, 1);
        }
      } else if (r.detached_root() == tree::kNoNode) {
        (void)r.compact();
      }
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    }
  }
  if (r.detached_root() != tree::kNoNode) r.attach_subtree(0, 1);
  (void)r.compact();
  const Tree now = r.snapshot();
  const tree::NcaIndex oracle(now);
  const auto& labels = r.labels();
  ASSERT_EQ(labels.size(), static_cast<std::size_t>(now.size()));
  for (NodeId u = 0; u < now.size(); u += 7)
    for (NodeId v = 0; v < now.size(); v += 11)
      ASSERT_EQ(AlstrupScheme::query(labels[static_cast<std::size_t>(u)],
                                     labels[static_cast<std::size_t>(v)]),
                oracle.distance(u, v));
}

TEST(EditModel, DeltaRoundTripMatchesLiveArena) {
  const Tree base = tree::random_tree(250, 36);
  IncrementalRelabeler r(base);
  const bits::LabelArena base_arena = r.labels();
  std::mt19937_64 rng(1100);
  for (int e = 0; e < 30; ++e) {
    const int op = static_cast<int>(rng() % 3);
    try {
      if (op == 0)
        (void)r.insert_leaf(static_cast<NodeId>(rng() % r.size()));
      else if (op == 1)
        r.delete_leaf(static_cast<NodeId>(rng() % r.size()));
      else
        r.set_edge_weight(static_cast<NodeId>(rng() % r.size()), 2);
    } catch (const std::exception&) {
    }
  }
  (void)r.compact();
  std::stringstream ss;
  r.ship_delta(ss);
  const core::LabelDelta d = core::LabelStore::load_delta(ss);
  EXPECT_EQ(d.scheme, "alstrup");
  EXPECT_EQ(d.base_count, 250u);
  EXPECT_FALSE(d.edits.empty());
  bits::LabelArena copy = base_arena;
  const bits::LabelArena applied = core::LabelStore::apply_delta(
      bits::MappedArena::adopt(std::move(copy)), d);
  ASSERT_EQ(applied.size(), r.labels().size());
  for (std::size_t i = 0; i < applied.size(); ++i)
    ASSERT_TRUE(applied.view(i) == r.labels().view(i)) << i;
  // A delta is a small fraction of the full file for small edit batches —
  // the shipping win. (30 edits on 250 nodes: the dirty cone is a sliver.)
  std::stringstream full;
  core::LabelStore::save_mappable(full, "alstrup", r.labels());
  std::stringstream next;
  (void)r.insert_leaf(3);
  r.ship_delta(next);
  EXPECT_LT(next.str().size(), full.str().size() / 2);
}

}  // namespace
