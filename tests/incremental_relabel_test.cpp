// Dynamic-forest coverage: IncrementalRelabeler must hold one invariant
// above all — after any sequence of leaf inserts, its spliced arena is
// bit-identical to AlstrupScheme built from scratch on the edited tree with
// the same (kStablePow2) weight policy. This is asserted label by label
// across randomized edit sequences over every tree shape, the same way
// parallel_build_test asserts thread-count parity. Plus: the stable weight
// policy itself answers distance queries exactly, fallbacks are counted and
// produce the same bits, and the serving hand-off (to_loaded) round-trips.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using core::AlstrupOptions;
using core::AlstrupScheme;
using core::IncrementalRelabeler;
using core::RelabelOptions;
using core::RelabelOutcome;
using tree::NodeId;
using tree::Tree;

constexpr AlstrupOptions kStable{nca::CodeWeights::kStablePow2, 1};

void expect_arena_equal(const bits::LabelArena& got,
                        const bits::LabelArena& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.label_bits(i), want.label_bits(i)) << what << " label " << i;
    ASSERT_TRUE(got.view(i) == want.view(i)) << what << " label " << i;
  }
}

TEST(StableWeights, AlstrupAnswersExactlyUnderThePow2Policy) {
  // The policy changes code weights, not query semantics: codes stay
  // prefix-free and order-preserving, so distances are still exact.
  for (const std::uint64_t seed : {3u, 4u}) {
    const Tree t = tree::random_tree(240, seed);
    const AlstrupScheme s(t, kStable);
    const tree::NcaIndex oracle(t);
    for (NodeId u = 0; u < t.size(); u += 7)
      for (NodeId v = 0; v < t.size(); v += 5)
        ASSERT_EQ(AlstrupScheme::query(s.label(u), s.label(v)),
                  oracle.distance(u, v))
            << "seed " << seed << " u=" << u << " v=" << v;
  }
}

TEST(StableWeights, PolicyIsDeterministicAcrossThreadCounts) {
  const Tree t = tree::random_tree(300, 9);
  const AlstrupScheme s1(t, {nca::CodeWeights::kStablePow2, 1});
  const AlstrupScheme s4(t, {nca::CodeWeights::kStablePow2, 4});
  expect_arena_equal(s4.labels(), s1.labels(), "threads");
}

/// The core parity loop: apply `edits` random leaf inserts to `base`,
/// checking after every edit that the incremental arena matches a
/// from-scratch rebuild bit for bit.
void run_parity(const Tree& base, int edits, std::uint64_t seed,
                RelabelOptions opt, const char* what) {
  IncrementalRelabeler r(base, opt);
  expect_arena_equal(r.labels(), AlstrupScheme(base, kStable).labels(), what);
  std::mt19937_64 rng(seed);
  for (int e = 0; e < edits; ++e) {
    const auto parent =
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size()));
    const auto weight = static_cast<std::uint32_t>(1 + rng() % 3);
    (void)r.insert_leaf(parent, weight);
    const Tree now = r.snapshot();
    const AlstrupScheme fresh(now, kStable);
    expect_arena_equal(r.labels(), fresh.labels(), what);
    if (testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << what << ": mismatch after edit " << e;
      return;
    }
    // Bits matching is the contract; the internal decomposition matching a
    // fresh one is the invariant that keeps it true on the NEXT edit.
    try {
      r.check_state();
    } catch (const std::logic_error& err) {
      ADD_FAILURE() << what << " after edit " << e << ": " << err.what();
      return;
    }
  }
  EXPECT_EQ(r.stats().edits, static_cast<std::uint64_t>(edits));
  EXPECT_EQ(r.stats().edits,
            r.stats().incremental + r.stats().restructured +
                r.stats().full_heavy_flip + r.stats().full_dirty_cone);
}

TEST(IncrementalRelabel, BitIdenticalAcrossRandomEditSequences) {
  run_parity(tree::random_tree(400, 21), 60, 101, {}, "random");
  run_parity(tree::random_binary_tree(300, 22), 60, 102, {}, "random-binary");
}

TEST(IncrementalRelabel, BitIdenticalOnExtremeShapes) {
  run_parity(tree::path(150), 40, 103, {}, "path");
  run_parity(tree::star(150), 40, 104, {}, "star");
  run_parity(tree::caterpillar(40, 6), 40, 105, {}, "caterpillar");
  run_parity(tree::balanced(2, 7), 40, 106, {}, "balanced-binary");
  run_parity(tree::spider(8, 20), 40, 107, {}, "spider");
}

TEST(IncrementalRelabel, TinyTreesGrowCorrectlyFromOneNode) {
  // n = 1 upward: every structural edge case (first child, first light
  // child, path extension at the root) appears in the first few inserts.
  run_parity(Tree(std::vector<NodeId>{tree::kNoNode}), 40, 108, {}, "tiny");
}

TEST(IncrementalRelabel, ForcedFallbacksProduceTheSameBits) {
  // max_dirty_fraction = 0 forces the full-rebuild path on every edit (the
  // floor of 256 dirty labels keeps small trees incremental, so use a tree
  // comfortably past it).
  RelabelOptions always_full;
  always_full.max_dirty_fraction = 0.0;
  const Tree base = tree::random_tree(900, 23);
  IncrementalRelabeler full(base, always_full);
  IncrementalRelabeler inc(base, {});
  std::mt19937_64 rng(300);
  for (int e = 0; e < 25; ++e) {
    const auto parent =
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(full.size()));
    (void)full.insert_leaf(parent);
    (void)inc.insert_leaf(parent);
    ASSERT_NO_FATAL_FAILURE(
        expect_arena_equal(inc.labels(), full.labels(), "forced-full"));
  }
  EXPECT_EQ(full.stats().full_dirty_cone + full.stats().full_heavy_flip, 25u);
  EXPECT_EQ(full.stats().incremental + full.stats().restructured, 0u);
}

TEST(IncrementalRelabel, MostEditsAreIncrementalOnRandomTrees) {
  const Tree base = tree::random_tree(4000, 24);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(400);
  for (int e = 0; e < 120; ++e)
    (void)r.insert_leaf(
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size())));
  const auto& st = r.stats();
  EXPECT_EQ(st.edits, 120u);
  // The point of the stable policy + local restructuring: the typical edit
  // re-emits a small cone instead of rebuilding the world.
  EXPECT_GT(st.incremental + st.restructured, 100u);
  EXPECT_GT(st.labels_spliced, st.labels_reemitted);
}

TEST(IncrementalRelabel, QueriesStayExactWhileGrowing) {
  const Tree base = tree::random_tree(250, 25);
  IncrementalRelabeler r(base);
  std::mt19937_64 rng(500);
  for (int e = 0; e < 50; ++e)
    (void)r.insert_leaf(
        static_cast<NodeId>(rng() % static_cast<std::uint64_t>(r.size())),
        static_cast<std::uint32_t>(1 + rng() % 4));
  const Tree now = r.snapshot();
  const tree::NcaIndex oracle(now);
  const auto& labels = r.labels();
  for (NodeId u = 0; u < now.size(); u += 11)
    for (NodeId v = 0; v < now.size(); v += 7)
      ASSERT_EQ(AlstrupScheme::query(labels[static_cast<std::size_t>(u)],
                                     labels[static_cast<std::size_t>(v)]),
                oracle.distance(u, v));
}

TEST(IncrementalRelabel, ToLoadedHandsOffTheCurrentLabels) {
  const Tree base = tree::random_tree(120, 26);
  IncrementalRelabeler r(base);
  (void)r.insert_leaf(5);
  const auto loaded = r.to_loaded();
  EXPECT_EQ(loaded.scheme, "alstrup");
  expect_arena_equal(loaded.labels, r.labels(), "to_loaded");
}

TEST(IncrementalRelabel, BadParentThrows) {
  IncrementalRelabeler r(tree::random_tree(50, 27));
  EXPECT_THROW((void)r.insert_leaf(-1), std::out_of_range);
  EXPECT_THROW((void)r.insert_leaf(50), std::out_of_range);
  EXPECT_EQ(r.stats().edits, 0u);
}

}  // namespace
