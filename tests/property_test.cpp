// Cross-scheme property tests: invariants that must hold for every scheme
// on every workload — symmetry, identity, agreement between schemes,
// consistency across k and eps, and label-size growth bounds — swept over
// (shape x size x seed) with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/adjacency_scheme.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "tree/hpd.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

class SweepTest : public ::testing::TestWithParam<
                      std::tuple<std::size_t, tree::NodeId, std::uint64_t>> {
 protected:
  Tree make() const {
    const auto [shape, n, seed] = GetParam();
    return tree::standard_shapes()[shape].make(n, seed);
  }
};

TEST_P(SweepTest, ExactSymmetryIdentityAgreement) {
  const Tree t = make();
  const core::FgnwScheme f(t);
  const core::AlstrupScheme a(t);
  const tree::NcaIndex oracle(t);
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < 500; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    const auto duv = core::FgnwScheme::query(f.label(u), f.label(v));
    // Symmetry.
    ASSERT_EQ(duv, core::FgnwScheme::query(f.label(v), f.label(u)));
    // Agreement across schemes.
    ASSERT_EQ(duv, core::AlstrupScheme::query(a.label(u), a.label(v)));
    // Ground truth.
    ASSERT_EQ(duv, oracle.distance(u, v));
  }
  for (NodeId v = 0; v < t.size(); v += 17)
    ASSERT_EQ(core::FgnwScheme::query(f.label(v), f.label(v)), 0u);
}

TEST_P(SweepTest, KDistanceMonotoneInK) {
  const Tree t = make();
  const core::KDistanceScheme s2(t, 2);
  const core::KDistanceScheme s6(t, 6);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < 400; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    const auto r2 = core::KDistanceScheme::query(2, s2.label(u), s2.label(v));
    const auto r6 = core::KDistanceScheme::query(6, s6.label(u), s6.label(v));
    if (r2.within) {
      // Anything within 2 is within 6, with the same distance.
      ASSERT_TRUE(r6.within);
      ASSERT_EQ(r2.distance, r6.distance);
    }
    if (!r6.within) {
      ASSERT_FALSE(r2.within);
    }
  }
}

TEST_P(SweepTest, KEquals1MatchesAdjacency) {
  const Tree t = make();
  const core::KDistanceScheme k1(t, 1);
  const core::AdjacencyScheme adj(t);
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < 600; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    const auto r = core::KDistanceScheme::query(1, k1.label(u), k1.label(v));
    const bool adjacent = r.within && r.distance == 1;
    ASSERT_EQ(adjacent,
              core::AdjacencyScheme::adjacent(adj.label(u), adj.label(v)))
        << u << " " << v;
  }
}

TEST_P(SweepTest, ApproxDominatedByTighterEps) {
  const Tree t = make();
  const core::ApproxScheme loose(t, 1.0);
  const core::ApproxScheme tight(t, 0.0625);
  const tree::NcaIndex oracle(t);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<NodeId> pick(0, t.size() - 1);
  for (int i = 0; i < 400; ++i) {
    const NodeId u = pick(rng), v = pick(rng);
    const auto d = oracle.distance(u, v);
    const auto el = core::ApproxScheme::query(1.0, loose.label(u), loose.label(v));
    const auto et =
        core::ApproxScheme::query(0.0625, tight.label(u), tight.label(v));
    ASSERT_GE(el, d);
    ASSERT_GE(et, d);
    ASSERT_LE(static_cast<double>(et), 1.0625 * static_cast<double>(d) + 1e-9);
    ASSERT_LE(static_cast<double>(el), 2.0 * static_cast<double>(d) + 1e-9);
  }
  // Tighter eps never has smaller labels than loose eps by more than noise.
  EXPECT_GE(tight.stats().max_bits + 8, loose.stats().max_bits);
}

TEST_P(SweepTest, LabelSizeGrowthBounds) {
  const Tree t = make();
  const double lg = std::log2(static_cast<double>(t.size()) + 1) + 2;
  const core::FgnwScheme f(t);
  const core::AlstrupScheme a(t);
  // Generous constants: catches regressions to Theta(n) or Theta(log^3).
  EXPECT_LE(static_cast<double>(f.stats().max_bits), 2.0 * lg * lg + 200.0);
  EXPECT_LE(static_cast<double>(a.stats().max_bits), 2.0 * lg * lg + 200.0);
  const tree::HeavyPathDecomposition hpd(t);
  const nca::NcaLabeling nl(hpd);
  std::size_t nca_max = 0;
  for (NodeId v = 0; v < t.size(); ++v)
    nca_max = std::max(nca_max, nl.label(v).size());
  EXPECT_LE(static_cast<double>(nca_max), 30.0 * lg);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SweepTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 9),
                       ::testing::Values<tree::NodeId>(64, 600, 4000),
                       ::testing::Values<std::uint64_t>(1, 12345)));

}  // namespace
