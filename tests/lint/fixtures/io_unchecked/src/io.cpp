// Fixture: a raw read with no failpoint evaluation anywhere in reach.
#include <unistd.h>

long drain(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);
}
