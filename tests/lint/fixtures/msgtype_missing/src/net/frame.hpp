// Fixture: kPong has no codec branch and no test case.
#pragma once
#include <cstdint>

namespace demo {

enum class MsgType : std::uint32_t {
  kPing = 1,
  kPong = 2,
};

}  // namespace demo
