#include "net/frame.hpp"

namespace demo {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "kPing";
    default:
      return "kUnknown";
  }
}

}  // namespace demo
