#include "net/frame.hpp"

void test_ping() {
  (void)demo::MsgType::kPing;
}
