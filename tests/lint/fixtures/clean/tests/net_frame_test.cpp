#include "net/frame.hpp"

void test_all_types() {
  (void)demo::MsgType::kPing;
  (void)demo::MsgType::kPong;
}
