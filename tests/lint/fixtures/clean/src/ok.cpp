// Fixture: every rule's happy path in one mini-repo — must lint clean.
#include <unistd.h>

namespace failpoint {
bool check(const char*);
}

struct Registry {
  int& counter(const char*);
};

void register_metrics(Registry& reg) {
  reg.counter("demo.requests");  // documented in README.md's catalog
}

long guarded_read(int fd, char* buf, unsigned long n) {
  if (failpoint::check("demo.read")) return -1;
  return ::read(fd, buf, n);
}

void poke(int fd) {
  const char b = 'w';
  // lint: allow(io-failpoint): self-pipe poke, not a fault boundary
  (void)::write(fd, &b, 1);
}

int* intentional_leak() {
  // A string or comment saying new or malloc( must not trip naked-new.
  const char* note = "placement new is spelled differently";
  (void)note;
  // lint: allow(naked-new): deliberate leak, owned for process lifetime
  return new int(7);
}

// NOLINTNEXTLINE(bugprone-demo-check): reason present, so this is fine
int g_counter = 0;
