// Fixture: bare new with no ownership story and no justification.
int* leak() {
  return new int(42);
}
