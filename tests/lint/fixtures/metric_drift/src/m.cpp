// Fixture: `demo.requests` is registered but undocumented, and the README
// catalogs `demo.ghost`, which no longer exists in src.
struct Registry {
  int& counter(const char*);
};

void register_metrics(Registry& reg) {
  reg.counter("demo.requests");
}
