// Fixture: NOLINT with neither a named check nor a reason.
int g = 0;  // NOLINT
