// Failure-injection suite: decoders must be total. For every scheme, random
// bit flips, truncations, and random garbage fed to query() must either
// return a value or throw bits::DecodeError / std::out_of_range /
// std::runtime_error — never crash, hang, or read out of bounds. (Run
// under ASan/UBSan in CI builds for the memory-safety half of the claim.)
#include <gtest/gtest.h>

#include <random>

#include "bits/bitio.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/level_ancestor_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/generators.hpp"

namespace {

using namespace treelab;
using bits::BitVec;

/// Runs `f` and asserts it terminates in a controlled way.
template <typename F>
void must_not_crash(F&& f) {
  try {
    f();
  } catch (const bits::DecodeError&) {
  } catch (const std::out_of_range&) {
  } catch (const std::runtime_error&) {
  }
  // std::logic_error or UB would surface as a test crash / sanitizer abort.
}

BitVec flip_bits(const BitVec& l, int flips, std::mt19937_64& rng) {
  BitVec out = l;
  for (int i = 0; i < flips && out.size() > 0; ++i) {
    const std::size_t pos = rng() % out.size();
    out.set(pos, !out.get(pos));
  }
  return out;
}

BitVec random_garbage(std::size_t bits, std::mt19937_64& rng) {
  BitVec out;
  for (std::size_t i = 0; i < bits; i += 64)
    out.append_bits(rng(), static_cast<int>(std::min<std::size_t>(64, bits - i)));
  return out;
}

template <typename QueryFn>
void fuzz_labels(const bits::LabelArena& labels, QueryFn&& q,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, labels.size() - 1);
  for (int trial = 0; trial < 400; ++trial) {
    const BitVec good = labels[pick(rng)];
    const BitVec other = labels[pick(rng)];
    // Bit flips.
    const BitVec flipped = flip_bits(good, 1 + static_cast<int>(rng() % 4), rng);
    must_not_crash([&] { (void)q(flipped, other); });
    must_not_crash([&] { (void)q(other, flipped); });
    // Truncations.
    if (good.size() > 1) {
      const BitVec cut = good.slice(0, rng() % good.size());
      must_not_crash([&] { (void)q(cut, other); });
    }
    // Pure garbage of assorted sizes.
    const BitVec junk = random_garbage(rng() % 300, rng);
    must_not_crash([&] { (void)q(junk, other); });
    must_not_crash([&] { (void)q(junk, junk); });
  }
}

TEST(Fuzz, FgnwQuery) {
  const auto t = tree::random_tree(300, 1);
  const core::FgnwScheme s(t);
  fuzz_labels(s.labels(),
              [](const BitVec& a, const BitVec& b) {
                return core::FgnwScheme::query(a, b);
              },
              11);
}

TEST(Fuzz, AlstrupQuery) {
  const auto t = tree::random_tree(300, 2);
  const core::AlstrupScheme s(t);
  fuzz_labels(s.labels(),
              [](const BitVec& a, const BitVec& b) {
                return core::AlstrupScheme::query(a, b);
              },
              12);
}

TEST(Fuzz, PelegQuery) {
  const auto t = tree::random_tree(300, 3);
  const core::PelegScheme s(t);
  fuzz_labels(s.labels(),
              [](const BitVec& a, const BitVec& b) {
                return core::PelegScheme::query(a, b);
              },
              13);
}

TEST(Fuzz, KDistanceQuery) {
  const auto t = tree::random_tree(300, 4);
  for (std::uint64_t k : {2, 64}) {
    const core::KDistanceScheme s(t, k);
    fuzz_labels(s.labels(),
                [k](const BitVec& a, const BitVec& b) {
                  return core::KDistanceScheme::query(k, a, b).distance;
                },
                14 + k);
  }
}

TEST(Fuzz, ApproxQuery) {
  const auto t = tree::random_tree(300, 5);
  const core::ApproxScheme s(t, 0.25);
  fuzz_labels(s.labels(),
              [](const BitVec& a, const BitVec& b) {
                return core::ApproxScheme::query(0.25, a, b);
              },
              15);
}

TEST(Fuzz, LevelAncestorParent) {
  const auto t = tree::random_tree(300, 6);
  const core::LevelAncestorScheme s(t);
  std::mt19937_64 rng(16);
  for (int trial = 0; trial < 400; ++trial) {
    const BitVec& good = s.label(static_cast<tree::NodeId>(rng() % 300));
    const BitVec flipped = flip_bits(good, 2, rng);
    must_not_crash([&] {
      // Walking to the root from a corrupt label must terminate: labels
      // carry a depth field, so parent() either throws or strictly
      // decreases it; cap the walk defensively anyway.
      BitVec cur = flipped;
      for (int step = 0; step < 1000; ++step) {
        auto p = core::LevelAncestorScheme::parent(cur);
        if (!p) break;
        cur = std::move(*p);
      }
    });
  }
}

TEST(Fuzz, LabelStoreLoad) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk(static_cast<std::size_t>(rng() % 200), '\0');
    for (auto& c : junk) c = static_cast<char>(rng());
    // Start with valid magic half of the time to reach deeper code paths.
    if (trial % 2 == 0 && junk.size() >= 4) {
      junk[0] = 'T';
      junk[1] = 'L';
      junk[2] = 'A';
      junk[3] = 'B';
    }
    std::stringstream in(junk);
    must_not_crash([&] { (void)core::LabelStore::load(in); });
  }
}

}  // namespace
