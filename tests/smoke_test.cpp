// End-to-end smoke checks: every implemented scheme against the brute-force
// oracle on a mix of small trees. Deeper per-module suites live in the
// dedicated test files.
#include <gtest/gtest.h>

#include "core/alstrup_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;

template <typename Scheme>
void expect_all_pairs_exact(const tree::Tree& t) {
  const Scheme s(t);
  const tree::NcaIndex oracle(t);
  for (tree::NodeId u = 0; u < t.size(); ++u)
    for (tree::NodeId v = 0; v < t.size(); ++v)
      ASSERT_EQ(Scheme::query(s.label(u), s.label(v)), oracle.distance(u, v))
          << "u=" << u << " v=" << v << " n=" << t.size();
}

TEST(Smoke, PelegRandom) {
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    expect_all_pairs_exact<core::PelegScheme>(tree::random_tree(60, seed));
}

TEST(Smoke, AlstrupRandom) {
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    expect_all_pairs_exact<core::AlstrupScheme>(tree::random_tree(60, seed));
}

TEST(Smoke, AlstrupShapes) {
  for (const auto& shape : tree::standard_shapes())
    expect_all_pairs_exact<core::AlstrupScheme>(shape.make(80, 1));
}

TEST(Smoke, AlstrupWeighted) {
  expect_all_pairs_exact<core::AlstrupScheme>(tree::hm_tree(4, 16, 7));
}

TEST(Smoke, FgnwRandom) {
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    expect_all_pairs_exact<core::FgnwScheme>(tree::random_tree(60, seed));
}

TEST(Smoke, FgnwShapes) {
  for (const auto& shape : tree::standard_shapes())
    expect_all_pairs_exact<core::FgnwScheme>(shape.make(80, 1));
}

TEST(Smoke, FgnwWeighted) {
  expect_all_pairs_exact<core::FgnwScheme>(tree::hm_tree(4, 16, 7));
}

TEST(Smoke, NcaLightdepth) {
  const auto t = tree::random_tree(120, 3);
  const tree::HeavyPathDecomposition hpd(t);
  const nca::NcaLabeling labels(hpd);
  const tree::NcaIndex oracle(t);
  for (tree::NodeId u = 0; u < t.size(); ++u)
    for (tree::NodeId v = 0; v < t.size(); ++v) {
      const auto res = nca::NcaLabeling::query(labels.label(u), labels.label(v));
      const tree::NodeId w = oracle.nca(u, v);
      ASSERT_EQ(res.lightdepth, hpd.light_depth(w)) << u << " " << v;
      using Rel = nca::NcaResult::Rel;
      if (u == v)
        ASSERT_EQ(res.rel, Rel::kEqual);
      else if (w == u)
        ASSERT_EQ(res.rel, Rel::kUAncestor);
      else if (w == v)
        ASSERT_EQ(res.rel, Rel::kVAncestor);
      else
        ASSERT_EQ(res.rel, Rel::kDiverge);
    }
}

}  // namespace
