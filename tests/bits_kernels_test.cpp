// Differential tests for the bits::kernels dispatch facade: every level the
// host supports must be bit-identical to the scalar reference on randomized
// and adversarial inputs (cross-word boundaries, all-zero/all-one runs,
// dense and sparse words, garbage bits past nbits). The scalar level itself
// is checked against naive bit-by-bit oracles, so a semantics drift in the
// shared scanner cannot self-certify. These are the tests that must pass
// before any bench row attributed to the kernels is allowed to move.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "bits/kernels.hpp"
#include "bits/wordops.hpp"

namespace {

namespace kernels = treelab::bits::kernels;
using kernels::Level;
using kernels::kNpos;

std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (const Level l : {Level::kScalar, Level::kPopcnt, Level::kAvx2}) {
    if (kernels::supported(l)) out.push_back(l);
  }
  return out;
}

// Naive oracles: bit loops with no word-level tricks at all.
std::size_t naive_find_first_one(const std::vector<std::uint64_t>& words,
                                 std::size_t nbits, std::size_t from) {
  for (std::size_t i = from; i < nbits; ++i) {
    if ((words[i >> 6] >> (i & 63)) & 1u) return i;
  }
  return kNpos;
}

int naive_select_in_word(std::uint64_t w, int k) {
  for (int i = 0; i < 64; ++i) {
    if ((w >> i) & 1u) {
      if (k == 0) return i;
      --k;
    }
  }
  return -1;
}

std::uint64_t naive_popcount_words(const std::vector<std::uint64_t>& words,
                                   std::size_t nwords) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    for (int b = 0; b < 64; ++b) c += (words[i] >> b) & 1u;
  }
  return c;
}

// Checks every supported level (and the naive oracle) on one input.
void check_find(const std::vector<std::uint64_t>& words, std::size_t nbits,
                std::size_t from) {
  const std::size_t expect = naive_find_first_one(words, nbits, from);
  for (const Level l : supported_levels()) {
    EXPECT_EQ(kernels::find_first_one(l, words.data(), nbits, from), expect)
        << "level=" << kernels::level_name(l) << " nbits=" << nbits
        << " from=" << from;
  }
}

TEST(Kernels, LevelReporting) {
  EXPECT_TRUE(kernels::supported(Level::kScalar));
  EXPECT_TRUE(kernels::supported(kernels::level()));
  EXPECT_STREQ(kernels::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(kernels::level_name(Level::kPopcnt), "popcnt");
  EXPECT_STREQ(kernels::level_name(Level::kAvx2), "avx2");
  EXPECT_STREQ(kernels::level_name(), kernels::level_name(kernels::level()));
  // The dispatched table is the table of the resolved level.
  EXPECT_EQ(kernels::ops().find_first_one(nullptr, 0, 0), kNpos);
}

TEST(Kernels, FindFirstOneSingleBitNearBoundaries) {
  // One set bit at p, probed from every interesting start position.
  for (const std::size_t p : {std::size_t{0}, std::size_t{1}, std::size_t{62},
                              std::size_t{63}, std::size_t{64}, std::size_t{65},
                              std::size_t{127}, std::size_t{128},
                              std::size_t{191}, std::size_t{255},
                              std::size_t{256}, std::size_t{319}}) {
    const std::size_t nbits = p + 7;
    std::vector<std::uint64_t> words((nbits + 63) / 64, 0);
    words[p >> 6] |= std::uint64_t{1} << (p & 63);
    for (std::size_t from = 0; from <= p + 2 && from <= nbits; ++from) {
      check_find(words, nbits, from);
    }
  }
}

TEST(Kernels, FindFirstOneZeroRunsAndEdges) {
  // Long all-zero runs (the AVX2 skip path), all-ones, and empty spans.
  for (const std::size_t nwords :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{5},
        std::size_t{9}, std::size_t{16}, std::size_t{33}}) {
    std::vector<std::uint64_t> zeros(nwords, 0);
    std::vector<std::uint64_t> ones(nwords, ~std::uint64_t{0});
    for (const std::size_t nbits :
         {nwords * 64, nwords * 64 - 1, nwords * 64 - 63}) {
      for (const std::size_t from :
           {std::size_t{0}, std::size_t{1}, std::size_t{63}, nbits / 2, nbits,
            nbits + 5}) {
        if (from > nbits && from != nbits + 5) continue;
        check_find(zeros, nbits, from);
        check_find(ones, nbits, from);
      }
      // A lone terminator in the very last live position.
      std::vector<std::uint64_t> tail(nwords, 0);
      tail[(nbits - 1) >> 6] |= std::uint64_t{1} << ((nbits - 1) & 63);
      check_find(tail, nbits, 0);
      check_find(tail, nbits, nbits - 1);
    }
  }
}

TEST(Kernels, FindFirstOneIgnoresBitsPastNbits) {
  // The contract masks the final word: set bits past nbits (a corrupt
  // mapping, or simply a caller handing a wider buffer) must not be found.
  for (const std::size_t nbits :
       {std::size_t{1}, std::size_t{5}, std::size_t{64}, std::size_t{65},
        std::size_t{130}, std::size_t{257}}) {
    std::vector<std::uint64_t> words((nbits + 63) / 64, 0);
    const std::size_t tail = nbits & 63;
    if (tail != 0) {
      // All garbage bits of the last word set, everything live zero.
      words.back() = ~treelab::bits::low_mask(static_cast<int>(tail));
    }
    for (std::size_t from = 0; from <= nbits; from += (nbits > 8 ? 7 : 1)) {
      check_find(words, nbits, from);
    }
  }
}

TEST(Kernels, FindFirstOneRandomDensities) {
  std::mt19937_64 rng(0x5eedULL);
  for (const double density : {0.5, 1.0 / 64, 1.0 / 512}) {
    std::bernoulli_distribution bit(density);
    for (int iter = 0; iter < 40; ++iter) {
      const std::size_t nbits = 1 + rng() % 2048;
      std::vector<std::uint64_t> words((nbits + 63) / 64, 0);
      for (std::size_t i = 0; i < nbits; ++i) {
        if (bit(rng)) words[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
      for (int probes = 0; probes < 16; ++probes) {
        check_find(words, nbits, rng() % (nbits + 1));
      }
      check_find(words, nbits, 0);
    }
  }
}

TEST(Kernels, SelectInWordExhaustiveShapes) {
  // Single-bit words at every position, the all-ones word, and the
  // alternating patterns that stress the halving cascade.
  for (const Level l : supported_levels()) {
    for (int p = 0; p < 64; ++p) {
      EXPECT_EQ(kernels::select_in_word(l, std::uint64_t{1} << p, 0), p)
          << kernels::level_name(l);
    }
    for (int k = 0; k < 64; ++k) {
      EXPECT_EQ(kernels::select_in_word(l, ~std::uint64_t{0}, k), k)
          << kernels::level_name(l);
      EXPECT_EQ(kernels::select_in_word(l, 0x5555555555555555ull, k / 2),
                2 * (k / 2))
          << kernels::level_name(l);
    }
  }
}

TEST(Kernels, SelectInWordRandomDifferential) {
  std::mt19937_64 rng(0xfeedULL);
  for (int iter = 0; iter < 5000; ++iter) {
    // Mix dense and sparse words; skip zero (k < popcount precondition).
    std::uint64_t w = rng();
    if (iter % 3 == 1) w &= rng();
    if (iter % 3 == 2) w &= rng() & rng();
    if (w == 0) continue;
    const int pc = std::popcount(w);
    const int k = static_cast<int>(rng() % static_cast<unsigned>(pc));
    const int expect = naive_select_in_word(w, k);
    for (const Level l : supported_levels()) {
      EXPECT_EQ(kernels::select_in_word(l, w, k), expect)
          << kernels::level_name(l) << " w=" << w << " k=" << k;
    }
  }
}

TEST(Kernels, PopcountWordsDifferential) {
  std::mt19937_64 rng(0xc0deULL);
  // Lengths chosen to hit the unrolled body, the remainder loop, and both
  // empty and single-word edges.
  for (const std::size_t nwords :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{15}, std::size_t{64}, std::size_t{67}}) {
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<std::uint64_t> words(nwords == 0 ? 1 : nwords, 0);
      for (std::size_t i = 0; i < nwords; ++i) {
        switch (shape) {
          case 0: words[i] = 0; break;
          case 1: words[i] = ~std::uint64_t{0}; break;
          case 2: words[i] = rng(); break;
          default: words[i] = rng() & rng() & rng(); break;
        }
      }
      const std::uint64_t expect = naive_popcount_words(words, nwords);
      for (const Level l : supported_levels()) {
        EXPECT_EQ(kernels::popcount_words(l, words.data(), nwords), expect)
            << kernels::level_name(l) << " nwords=" << nwords
            << " shape=" << shape;
      }
    }
  }
}

}  // namespace
