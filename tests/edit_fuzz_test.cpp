// Differential edit-sequence fuzzer — the lockdown for the full dynamic-
// forest edit model. Randomized interleavings of insert_leaf / delete_leaf /
// detach_subtree / attach_subtree / set_edge_weight / compact are driven
// against a from-scratch AlstrupScheme (kStablePow2) rebuild oracle; after
// EVERY edit the incremental arena must be bit-identical to the oracle's
// (through the dense id map — tombstoned/detached ids must hold zero-length
// labels), and check_state() must accept the internal decomposition. On top
// of the arena parity, the delta pipeline is chained through the same runs:
// every few edits the relabeler ships a v3 delta which is saved, re-loaded
// and applied to a shadow copy of the base arena — the applied result must
// equal the live arena bit for bit, edit after edit, compaction after
// compaction.
//
// Reproducibility: every failure prints the shape, seed and a replay file
// holding the exact edit sequence, so any red run is a one-line repro:
//
//   ./edit_fuzz_test --replay <file>          (or --seed N --edits K)
//
// Flags (also readable from the environment, for ctest-driven runs):
//   --seed N     / TREELAB_FUZZ_SEED      override the per-shape seed
//   --edits N    / TREELAB_FUZZ_EDITS     edit budget per shape (default
//                                         1000 — the acceptance budget)
//   --replay F   / TREELAB_FUZZ_REPLAY    re-run a recorded edit sequence
//   --artifact-dir D / TREELAB_FUZZ_ARTIFACT_DIR
//                                         where failing replays are written
//                                         (default: the test temp dir)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/delta_journal.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/label_store.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/generators.hpp"
#include "util/fs.hpp"

namespace {

using namespace treelab;
using core::AlstrupScheme;
using core::IncrementalRelabeler;
using core::LabelStore;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

constexpr core::AlstrupOptions kStable{nca::CodeWeights::kStablePow2, 1};

struct FuzzConfig {
  std::uint64_t seed = 0;  // 0 = per-shape default
  int edits = 0;           // 0 = default budget (1000)
  std::string replay;
  std::string artifact_dir;
};
FuzzConfig g_cfg;

int edit_budget() { return g_cfg.edits > 0 ? g_cfg.edits : 1000; }

std::string artifact_dir() {
  return g_cfg.artifact_dir.empty() ? testing::TempDir()
                                    : g_cfg.artifact_dir + "/";
}

/// Drives one fuzz run: the relabeler, a structural mirror for picking
/// valid edits, the rebuild-oracle parity check, and the chained delta
/// shadow. Every applied edit is appended to a textual log so failures
/// replay from a file.
class FuzzDriver {
 public:
  FuzzDriver(const std::string& shape, NodeId n, std::uint64_t gen_seed,
             std::uint64_t rng_seed, const Tree& base)
      : shape_(shape), rng_(rng_seed), r_(base) {
    log_.push_back("base " + shape + " " + std::to_string(n) + " " +
                   std::to_string(gen_seed));
    parent_.resize(static_cast<std::size_t>(base.size()));
    state_.assign(static_cast<std::size_t>(base.size()), 0);
    kids_.assign(static_cast<std::size_t>(base.size()), 0);
    for (NodeId v = 0; v < base.size(); ++v) {
      parent_[static_cast<std::size_t>(v)] = base.parent(v);
      if (base.parent(v) != kNoNode) ++kids_[static_cast<std::size_t>(
          base.parent(v))];
    }
    shadow_ = r_.labels();
    // Every shipped delta also rides through a DeltaJournal, so the fuzz
    // run doubles as a journal append/replay differential (fsync off: the
    // recovery rules under crashes are crash_recovery_fuzz_test's job).
    journal_base_ = artifact_dir() + "treelab_edit_fuzz_" + shape + "_" +
                    std::to_string(rng_seed) + ".lbl";
    cleanup_journal();
    core::JournalOptions jopt;
    jopt.sync = false;
    jopt.checkpoint_records = 4;  // fold often: replay crosses checkpoints
    journal_.emplace(core::DeltaJournal::create(journal_base_, r_.to_loaded(),
                                                jopt));
  }

  ~FuzzDriver() { cleanup_journal(); }

  IncrementalRelabeler& relabeler() { return r_; }

  /// Applies one textual edit line (the replay path). Returns false on an
  /// unparseable line.
  bool apply_line(const std::string& line) {
    std::istringstream is(line);
    std::string op;
    is >> op;
    long long a = 0, b = 0;
    if (op == "I") {
      is >> a >> b;
      apply_insert(static_cast<NodeId>(a), static_cast<std::uint32_t>(b));
    } else if (op == "D") {
      is >> a;
      apply_delete(static_cast<NodeId>(a));
    } else if (op == "X") {
      is >> a;
      apply_detach(static_cast<NodeId>(a));
    } else if (op == "A") {
      is >> a >> b;
      apply_attach(static_cast<NodeId>(a), static_cast<std::uint32_t>(b));
    } else if (op == "W") {
      is >> a >> b;
      apply_weight(static_cast<NodeId>(a), static_cast<std::uint32_t>(b));
    } else if (op == "C") {
      apply_compact();
    } else {
      return false;
    }
    return !is.fail();
  }

  /// Picks and applies one random edit (always finds one: inserts are
  /// always possible).
  void step() {
    // When a detach is pending, mostly attach it back (the tree must keep
    // making progress); otherwise weight the mix toward inserts so trees
    // grow past their starting size while every kind stays hot.
    if (detached_ != kNoNode && rng_() % 4 != 0) {
      apply_attach(pick_live(), static_cast<std::uint32_t>(rng_() % 4));
      return;
    }
    for (;;) {
      switch (rng_() % 16) {
        case 0: case 1: case 2: case 3: case 4: case 5:
          apply_insert(pick_live(), static_cast<std::uint32_t>(rng_() % 4));
          return;
        case 6: case 7: case 8: {
          const NodeId v = pick_live_leaf();
          if (v == kNoNode) break;
          apply_delete(v);
          return;
        }
        case 9: case 10: {
          const NodeId v = pick_live_nonroot();
          if (v == kNoNode) break;
          apply_weight(v, static_cast<std::uint32_t>(rng_() % 5));
          return;
        }
        case 11: case 12: {
          if (detached_ != kNoNode) break;
          const NodeId v = pick_live_nonroot();
          if (v == kNoNode) break;
          apply_detach(v);
          return;
        }
        case 13: {
          if (detached_ == kNoNode) break;
          apply_attach(pick_live(), static_cast<std::uint32_t>(rng_() % 4));
          return;
        }
        default: {
          if (detached_ != kNoNode) break;
          apply_compact();
          return;
        }
      }
    }
  }

  /// The differential check: bit-identical to a from-scratch stable-weight
  /// Alstrup build on the compacted live tree, zero-length labels on every
  /// non-live id, and an internally consistent decomposition. Appends a
  /// gtest failure (with the replay recipe) on the first divergence;
  /// returns false so callers can stop early.
  [[nodiscard]] bool verify() {
    try {
      r_.check_state();
    } catch (const std::logic_error& e) {
      fail(std::string("check_state: ") + e.what());
      return false;
    }
    const Tree now = r_.snapshot();
    const AlstrupScheme fresh(now, kStable);
    const std::vector<NodeId> map = r_.dense_map();
    const auto& got = r_.labels();
    if (got.size() != map.size()) {
      fail("arena size != id-space size");
      return false;
    }
    for (std::size_t i = 0; i < map.size(); ++i) {
      if (map[i] == kNoNode) {
        if (got.label_bits(i) != 0) {
          fail("non-live id " + std::to_string(i) +
               " holds a non-empty label");
          return false;
        }
        continue;
      }
      const auto j = static_cast<std::size_t>(map[i]);
      if (got.label_bits(i) != fresh.labels().label_bits(j) ||
          !(got.view(i) == fresh.labels()[j])) {
        fail("label mismatch at id " + std::to_string(i) + " (dense " +
             std::to_string(j) + ")");
        return false;
      }
    }
    return true;
  }

  /// Ships a delta, reloads it through the wire format, applies it to the
  /// shadow base and checks the result equals the live arena. The applied
  /// arena becomes the next shadow base, so successive calls exercise
  /// chained deltas across compactions.
  [[nodiscard]] bool verify_delta_chain() {
    std::stringstream ss;
    r_.ship_delta(ss);
    bits::LabelArena applied;
    core::LabelDelta d;
    try {
      d = LabelStore::load_delta(ss);
      bits::LabelArena base_copy = shadow_;
      applied = LabelStore::apply_delta(
          bits::MappedArena::adopt(std::move(base_copy)), d);
    } catch (const std::exception& e) {
      fail(std::string("delta round-trip: ") + e.what());
      return false;
    }
    const auto& want = r_.labels();
    if (applied.size() != want.size()) {
      fail("delta-applied arena size mismatch");
      return false;
    }
    for (std::size_t i = 0; i < want.size(); ++i)
      if (applied.label_bits(i) != want.label_bits(i) ||
          !(applied.view(i) == want.view(i))) {
        fail("delta-applied label mismatch at id " + std::to_string(i));
        return false;
      }
    shadow_ = std::move(applied);
    // The same delta goes through the journal; its folded/replayed state
    // must track the live arena epoch for epoch.
    try {
      journal_->append(d);
      if (++chained_ % 4 == 0) {
        core::JournalOptions jopt;
        jopt.sync = false;
        jopt.checkpoint_records = 4;
        journal_.emplace(core::DeltaJournal::open(journal_base_, jopt));
      }
    } catch (const std::exception& e) {
      fail(std::string("journal append/replay: ") + e.what());
      return false;
    }
    const auto& jgot = journal_->labels();
    if (jgot.size() != want.size()) {
      fail("journal arena size mismatch");
      return false;
    }
    for (std::size_t i = 0; i < want.size(); ++i)
      if (jgot.label_bits(i) != want.label_bits(i) ||
          !(jgot.view(i) == want.view(i))) {
        fail("journal label mismatch at id " + std::to_string(i));
        return false;
      }
    return true;
  }

 private:
  void apply_insert(NodeId parent, std::uint32_t w) {
    log_.push_back("I " + std::to_string(parent) + " " + std::to_string(w));
    (void)r_.insert_leaf(parent, w);
    parent_.push_back(parent);
    state_.push_back(0);
    kids_.push_back(0);
    ++kids_[static_cast<std::size_t>(parent)];
  }
  void apply_delete(NodeId v) {
    log_.push_back("D " + std::to_string(v));
    r_.delete_leaf(v);
    state_[static_cast<std::size_t>(v)] = 1;
    --kids_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
  }
  void apply_detach(NodeId v) {
    log_.push_back("X " + std::to_string(v));
    r_.detach_subtree(v);
    --kids_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
    mark_subtree(v, 2);
    detached_ = v;
  }
  void apply_attach(NodeId parent, std::uint32_t w) {
    log_.push_back("A " + std::to_string(parent) + " " + std::to_string(w));
    r_.attach_subtree(parent, w);
    parent_[static_cast<std::size_t>(detached_)] = parent;
    ++kids_[static_cast<std::size_t>(parent)];
    mark_subtree(detached_, 0);
    detached_ = kNoNode;
  }
  void apply_weight(NodeId v, std::uint32_t w) {
    log_.push_back("W " + std::to_string(v) + " " + std::to_string(w));
    r_.set_edge_weight(v, w);
  }
  void apply_compact() {
    log_.push_back("C");
    const std::vector<NodeId> map = r_.compact();
    std::vector<NodeId> parent;
    std::vector<int> kids;
    for (std::size_t i = 0; i < map.size(); ++i) {
      if (map[i] == kNoNode) continue;
      const NodeId p = parent_[i];
      parent.push_back(p == kNoNode ? kNoNode
                                    : map[static_cast<std::size_t>(p)]);
      kids.push_back(kids_[i]);
    }
    parent_ = std::move(parent);
    kids_ = std::move(kids);
    state_.assign(parent_.size(), 0);
  }

  void mark_subtree(NodeId v, std::uint8_t s) {
    // The mirror keeps no child lists; an O(ids * depth) ancestor sweep is
    // plenty at fuzz sizes. Dead ids never change state.
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      if (state_[i] == 1) continue;
      for (NodeId a = static_cast<NodeId>(i); a != kNoNode;
           a = parent_[static_cast<std::size_t>(a)])
        if (a == v) {
          state_[i] = s;
          break;
        }
    }
  }

  [[nodiscard]] NodeId pick_live() {
    for (;;) {
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (state_[i] == 0) return static_cast<NodeId>(i);
    }
  }
  [[nodiscard]] NodeId pick_live_leaf() {
    for (int tries = 0; tries < 64; ++tries) {
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (state_[i] == 0 && kids_[i] == 0 && parent_[i] != kNoNode)
        return static_cast<NodeId>(i);
    }
    return kNoNode;
  }
  [[nodiscard]] NodeId pick_live_nonroot() {
    for (int tries = 0; tries < 64; ++tries) {
      const auto i = static_cast<std::size_t>(rng_() % parent_.size());
      if (state_[i] == 0 && parent_[i] != kNoNode)
        return static_cast<NodeId>(i);
    }
    return kNoNode;
  }

  void fail(const std::string& what) {
    const std::string path = artifact_dir() + "edit_fuzz_" + shape_ + "_" +
                             std::to_string(seed_used_) + ".replay";
    std::ofstream out(path);
    for (const std::string& l : log_) out << l << "\n";
    out.close();
    ADD_FAILURE() << "edit fuzz divergence on shape '" << shape_
                  << "' after edit " << log_.size() - 1 << ": " << what
                  << "\n  replay: ./edit_fuzz_test --replay " << path
                  << "\n  (or: --seed " << seed_used_ << " --edits "
                  << edit_budget() << ")";
  }

 public:
  std::uint64_t seed_used_ = 0;

 private:
  std::string shape_;
  std::mt19937_64 rng_;
  IncrementalRelabeler r_;
  // Structural mirror, id-space aligned with the relabeler's.
  std::vector<NodeId> parent_;
  std::vector<std::uint8_t> state_;  // 0 live, 1 dead, 2 detached
  std::vector<int> kids_;            // live-child counts
  NodeId detached_ = kNoNode;
  std::vector<std::string> log_;
  bits::LabelArena shadow_;  // delta-chain base (last shipped epoch)
  std::string journal_base_;
  std::optional<core::DeltaJournal> journal_;
  int chained_ = 0;

  void cleanup_journal() {
    util::remove_file(journal_base_);
    util::remove_file(journal_base_ + ".tmp");
    util::remove_file(core::DeltaJournal::journal_path(journal_base_));
    util::remove_file(core::DeltaJournal::journal_path(journal_base_) +
                      ".tmp");
  }
};

Tree make_base(const std::string& shape, NodeId n, std::uint64_t gen_seed) {
  if (shape == "path") return tree::path(n);
  if (shape == "star") return tree::star(n);
  if (shape == "caterpillar") return tree::caterpillar(n / 6, 5);
  if (shape == "random") return tree::random_tree(n, gen_seed);
  ADD_FAILURE() << "unknown shape " << shape;
  return tree::path(2);
}

void run_shape(const std::string& shape, NodeId n, std::uint64_t gen_seed,
               std::uint64_t default_seed) {
  const std::uint64_t seed =
      g_cfg.seed != 0 ? g_cfg.seed : default_seed;
  const Tree base = make_base(shape, n, gen_seed);
  FuzzDriver d(shape, n, gen_seed, seed, base);
  d.seed_used_ = seed;
  ASSERT_TRUE(d.verify()) << "initial state";
  const int budget = edit_budget();
  for (int e = 0; e < budget; ++e) {
    d.step();
    if (!d.verify()) return;
    if (e % 16 == 15 && !d.verify_delta_chain()) return;
  }
  ASSERT_TRUE(d.verify_delta_chain()) << "final delta";
  const auto& st = d.relabeler().stats();
  // Every step is either an edit or a compaction, and every edit lands in
  // exactly one outcome bucket.
  EXPECT_EQ(st.edits + st.compactions, static_cast<std::uint64_t>(budget));
  EXPECT_EQ(st.edits, st.incremental + st.restructured + st.full_heavy_flip +
                          st.full_dirty_cone);
}

TEST(EditFuzz, Path) { run_shape("path", 120, 0, 1001); }
TEST(EditFuzz, Star) { run_shape("star", 120, 0, 1002); }
TEST(EditFuzz, Caterpillar) { run_shape("caterpillar", 180, 0, 1003); }
TEST(EditFuzz, Random) { run_shape("random", 200, 21, 1004); }

TEST(EditFuzz, Replay) {
  if (g_cfg.replay.empty())
    GTEST_SKIP() << "no --replay file given";
  std::ifstream in(g_cfg.replay);
  ASSERT_TRUE(in) << "cannot open " << g_cfg.replay;
  std::string line;
  ASSERT_TRUE(std::getline(in, line)) << "empty replay";
  std::istringstream head(line);
  std::string tag, shape;
  long long n = 0, gen_seed = 0;
  head >> tag >> shape >> n >> gen_seed;
  ASSERT_EQ(tag, "base") << "replay must start with a 'base' line";
  const Tree base = make_base(shape, static_cast<NodeId>(n),
                              static_cast<std::uint64_t>(gen_seed));
  FuzzDriver d(shape, static_cast<NodeId>(n),
               static_cast<std::uint64_t>(gen_seed), 1, base);
  ASSERT_TRUE(d.verify()) << "initial state";
  int e = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(d.apply_line(line)) << "bad replay line: " << line;
    ++e;
    if (!d.verify()) {
      ADD_FAILURE() << "replay diverged at edit " << e << ": " << line;
      return;
    }
  }
  EXPECT_TRUE(d.verify_delta_chain());
  SUCCEED() << "replayed " << e << " edits";
}

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  const auto from_env = [](const char* name) -> std::string {
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  if (const std::string s = from_env("TREELAB_FUZZ_SEED"); !s.empty())
    g_cfg.seed = std::strtoull(s.c_str(), nullptr, 10);
  if (const std::string s = from_env("TREELAB_FUZZ_EDITS"); !s.empty())
    g_cfg.edits = std::atoi(s.c_str());
  g_cfg.replay = from_env("TREELAB_FUZZ_REPLAY");
  g_cfg.artifact_dir = from_env("TREELAB_FUZZ_ARTIFACT_DIR");
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed")
      g_cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--edits")
      g_cfg.edits = std::atoi(argv[++i]);
    else if (a == "--replay")
      g_cfg.replay = argv[++i];
    else if (a == "--artifact-dir")
      g_cfg.artifact_dir = argv[++i];
  }
  return RUN_ALL_TESTS();
}
