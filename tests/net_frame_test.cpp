// net/frame unit tests: round-trips for every payload codec, incremental
// decoding under arbitrary byte-level fragmentation, and the rejection
// matrix — bad magic, bad checksum, oversized lengths, truncated and
// trailing payload bytes. The end-to-end behavior of the protocol under
// live faults is net_fault_fuzz_test's job; this suite pins the codec
// contract itself.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/forest_index.hpp"

namespace {

using namespace treelab;
using net::Frame;
using net::FrameReader;
using net::MsgType;

Frame decode_one(const std::string& bytes) {
  FrameReader r;
  r.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(r.next(f), FrameReader::Status::kFrame);
  return f;
}

TEST(NetFrame, HeaderLayout) {
  const std::string bytes = net::encode_frame(MsgType::kEnd, "");
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "TLNF");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 8);  // u32 type, LE
  for (int i = 5; i < 16; ++i)
    EXPECT_EQ(bytes[i], '\0') << "byte " << i;  // type hi + payload_len
}

TEST(NetFrame, RoundTripAllTypes) {
  for (const MsgType t :
       {MsgType::kQueryBatch, MsgType::kQueryReply, MsgType::kError,
        MsgType::kOverloaded, MsgType::kSubscribe, MsgType::kSnapshot,
        MsgType::kDelta, MsgType::kEnd, MsgType::kStats, MsgType::kStatsReply,
        MsgType::kCaughtUp}) {
    const std::string payload = "payload-for-" +
                                std::to_string(static_cast<unsigned>(t));
    const Frame f = decode_one(net::encode_frame(t, payload));
    EXPECT_EQ(f.type, t);
    EXPECT_EQ(f.payload, payload);
  }
}

TEST(NetFrame, MsgTypeNamesAreExhaustiveAndDistinct) {
  // One case per enum value; a wire type whose name degrades to kUnknown
  // would break log/debug output silently, so pin each mapping.
  EXPECT_STREQ(net::msg_type_name(MsgType::kQueryBatch), "kQueryBatch");
  EXPECT_STREQ(net::msg_type_name(MsgType::kQueryReply), "kQueryReply");
  EXPECT_STREQ(net::msg_type_name(MsgType::kError), "kError");
  EXPECT_STREQ(net::msg_type_name(MsgType::kOverloaded), "kOverloaded");
  EXPECT_STREQ(net::msg_type_name(MsgType::kSubscribe), "kSubscribe");
  EXPECT_STREQ(net::msg_type_name(MsgType::kSnapshot), "kSnapshot");
  EXPECT_STREQ(net::msg_type_name(MsgType::kDelta), "kDelta");
  EXPECT_STREQ(net::msg_type_name(MsgType::kEnd), "kEnd");
  EXPECT_STREQ(net::msg_type_name(MsgType::kStats), "kStats");
  EXPECT_STREQ(net::msg_type_name(MsgType::kStatsReply), "kStatsReply");
  EXPECT_STREQ(net::msg_type_name(MsgType::kCaughtUp), "kCaughtUp");
  EXPECT_STREQ(net::msg_type_name(static_cast<MsgType>(0)), "kUnknown");
  EXPECT_STREQ(net::msg_type_name(static_cast<MsgType>(999)), "kUnknown");
}

TEST(NetFrame, FragmentedDelivery) {
  // A stream of frames fed one byte at a time must decode identically.
  std::string stream;
  net::append_frame(stream, MsgType::kError, "first");
  net::append_frame(stream, MsgType::kEnd, "");
  net::append_frame(stream, MsgType::kDelta, std::string(1000, 'x'));
  FrameReader r;
  std::vector<Frame> got;
  Frame f;
  for (const char c : stream) {
    r.feed(&c, 1);
    while (r.next(f) == FrameReader::Status::kFrame) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].payload, "first");
  EXPECT_EQ(got[1].type, MsgType::kEnd);
  EXPECT_EQ(got[2].payload.size(), 1000u);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(NetFrame, BadMagicIsSticky) {
  std::string bytes = net::encode_frame(MsgType::kEnd, "");
  bytes[0] = 'X';
  bytes += net::encode_frame(MsgType::kEnd, "");  // a good frame after
  FrameReader r;
  r.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(r.next(f), FrameReader::Status::kBad);
  // No resynchronization: once out of sync, always kBad.
  EXPECT_EQ(r.next(f), FrameReader::Status::kBad);
}

TEST(NetFrame, ChecksumCatchesEveryFlippedPayloadByte) {
  const std::string good = net::encode_frame(MsgType::kError, "sensitive");
  for (std::size_t i = net::kFrameHeaderBytes; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    FrameReader r;
    r.feed(bad.data(), bad.size());
    Frame f;
    EXPECT_EQ(r.next(f), FrameReader::Status::kBad) << "byte " << i;
  }
}

TEST(NetFrame, RejectsUnknownTypeAndOversizedLength) {
  std::string bytes = net::encode_frame(MsgType::kEnd, "");
  bytes[4] = 99;  // type out of range
  FrameReader r1;
  r1.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(r1.next(f), FrameReader::Status::kBad);

  // A length field past the reader's cap is kBad immediately — the reader
  // must never try to buffer it.
  std::string huge = net::encode_frame(MsgType::kDelta, "x");
  huge[8] = '\xff';  // payload_len low bytes
  huge[9] = '\xff';
  huge[10] = '\xff';
  net::FrameReader r2(/*max_payload=*/1 << 20);
  r2.feed(huge.data(), net::kFrameHeaderBytes);
  EXPECT_EQ(r2.next(f), FrameReader::Status::kBad);
}

TEST(NetFrame, QueryBatchRoundTripAndRejects) {
  std::vector<serve::Request> reqs{{0, 1, 2}, {7, -1, 4}, {3, 0, 0}};
  const std::string payload = net::encode_query_batch(reqs);
  std::vector<serve::Request> out;
  ASSERT_TRUE(net::decode_query_batch(payload, out));
  ASSERT_EQ(out.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(out[i].tree, reqs[i].tree);
    EXPECT_EQ(out[i].u, reqs[i].u);
    EXPECT_EQ(out[i].v, reqs[i].v);
  }
  // Truncated, trailing, and count-mismatched payloads must all refuse.
  EXPECT_FALSE(net::decode_query_batch(payload.substr(0, payload.size() - 1),
                                       out));
  EXPECT_FALSE(net::decode_query_batch(payload + "z", out));
  std::string lying = payload;
  lying[0] = 50;  // claims 50 requests, carries 3
  EXPECT_FALSE(net::decode_query_batch(lying, out));
  EXPECT_FALSE(net::decode_query_batch("abc", out));
}

TEST(NetFrame, QueryReplyRoundTripAndRejects) {
  std::vector<serve::QueryResult> results(3);
  results[0].dist = {true, 42};
  results[0].status = serve::QueryStatus::kOk;
  results[1].dist = {false, 0};
  results[1].status = serve::QueryStatus::kBadNode;
  results[2].dist = {true, std::uint64_t{1} << 60};
  results[2].status = serve::QueryStatus::kQuarantined;
  const std::string payload = net::encode_query_reply(results);
  std::vector<serve::QueryResult> out;
  ASSERT_TRUE(net::decode_query_reply(payload, out));
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].status, results[i].status);
    EXPECT_EQ(out[i].dist.within, results[i].dist.within);
    EXPECT_EQ(out[i].dist.value, results[i].dist.value);
  }
  // A status or within byte outside the enum/bool domain is a violation.
  std::string bad_status = payload;
  bad_status[4] = 17;
  EXPECT_FALSE(net::decode_query_reply(bad_status, out));
  std::string bad_within = payload;
  bad_within[5] = 2;
  EXPECT_FALSE(net::decode_query_reply(bad_within, out));
  EXPECT_FALSE(net::decode_query_reply(payload.substr(1), out));
}

TEST(NetFrame, SubscribeRoundTrip) {
  for (const bool force : {false, true}) {
    net::Subscribe s;
    s.chain = 0xdeadbeefcafef00dULL;
    s.force_snapshot = force;
    net::Subscribe out;
    ASSERT_TRUE(net::decode_subscribe(net::encode_subscribe(s), out));
    EXPECT_EQ(out.chain, s.chain);
    EXPECT_EQ(out.force_snapshot, force);
  }
  net::Subscribe out;
  EXPECT_FALSE(net::decode_subscribe("short", out));
}

TEST(NetFrame, SnapshotHeaderSplit) {
  // decode_snapshot_header slices chain from container without copying or
  // parsing the container (that is LabelStore's job on the other side).
  const std::string payload = std::string("\x11\x22\x33\x44\x55\x66\x77\x08",
                                          8) +
                              "container-bytes";
  std::uint64_t chain = 0;
  std::string_view container;
  ASSERT_TRUE(net::decode_snapshot_header(payload, chain, container));
  EXPECT_EQ(chain, 0x0877665544332211ULL);
  EXPECT_EQ(container, "container-bytes");
  EXPECT_FALSE(net::decode_snapshot_header("1234567", chain, container));
}

TEST(NetFrame, StatsReplyRoundTripAndRejects) {
  std::vector<net::StatLine> lines{{"net.server.queries", 12345},
                                   {"", 0},
                                   {"journal.appends", ~std::uint64_t{0}}};
  const std::string payload = net::encode_stats_reply(lines);
  std::vector<net::StatLine> out;
  ASSERT_TRUE(net::decode_stats_reply(payload, out));
  ASSERT_EQ(out.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(out[i].name, lines[i].name);
    EXPECT_EQ(out[i].value, lines[i].value);
  }
  // Truncated, trailing, and count-lying payloads must all refuse.
  EXPECT_FALSE(
      net::decode_stats_reply(payload.substr(0, payload.size() - 1), out));
  EXPECT_FALSE(net::decode_stats_reply(payload + "z", out));
  std::string lying = payload;
  lying[0] = 100;  // claims 100 lines, carries 3
  EXPECT_FALSE(net::decode_stats_reply(lying, out));
  // A name length pointing past the payload end must refuse, not read.
  std::string long_name = payload;
  long_name[4] = '\xff';  // first line's name_len low byte
  long_name[5] = '\xff';
  EXPECT_FALSE(net::decode_stats_reply(long_name, out));
  EXPECT_FALSE(net::decode_stats_reply("ab", out));
  // Empty dump is legal.
  ASSERT_TRUE(net::decode_stats_reply(net::encode_stats_reply({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(NetFrame, CaughtUpRoundTripAndRejects) {
  const std::uint64_t chain = 0x0123456789abcdefULL;
  const std::string payload = net::encode_caught_up(chain);
  std::uint64_t out = 0;
  ASSERT_TRUE(net::decode_caught_up(payload, out));
  EXPECT_EQ(out, chain);
  EXPECT_FALSE(net::decode_caught_up(payload.substr(0, 7), out));
  EXPECT_FALSE(net::decode_caught_up(payload + "x", out));
  EXPECT_FALSE(net::decode_caught_up("", out));
}

TEST(NetFrame, RandomizedCodecFuzz) {
  // Random bytes must never crash a decoder, and random valid requests
  // must always round-trip — a quick property sweep on top of the pinned
  // cases above.
  std::mt19937_64 rng(99);
  for (int it = 0; it < 500; ++it) {
    std::string junk(rng() % 64, '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    std::vector<serve::Request> reqs;
    std::vector<serve::QueryResult> results;
    net::Subscribe sub;
    std::uint64_t chain;
    std::string_view container;
    std::vector<net::StatLine> stat_lines;
    (void)net::decode_query_batch(junk, reqs);
    (void)net::decode_query_reply(junk, results);
    (void)net::decode_subscribe(junk, sub);
    (void)net::decode_snapshot_header(junk, chain, container);
    (void)net::decode_stats_reply(junk, stat_lines);
    (void)net::decode_caught_up(junk, chain);

    reqs.resize(rng() % 8);
    for (serve::Request& r : reqs) {
      r.tree = static_cast<serve::TreeId>(rng());
      r.u = static_cast<tree::NodeId>(rng());
      r.v = static_cast<tree::NodeId>(rng());
    }
    std::vector<serve::Request> back;
    ASSERT_TRUE(net::decode_query_batch(net::encode_query_batch(reqs), back));
    ASSERT_EQ(back.size(), reqs.size());
  }
}

}  // namespace
